//! A minimal JSON value model, parser, and writer (RFC 8259), shared by
//! the serve protocol codec and the `--format json` report renderers.
//!
//! The workspace is dependency-free, so this is hand-rolled and
//! deliberately small: objects preserve insertion order (a `Vec` of
//! pairs), numbers are `f64`, and the writer is deterministic — the same
//! value always serializes to the same bytes, which the protocol's
//! byte-identical-report guarantee and the committed golden files rely on.
//!
//! The parser is a plain recursive-descent with a nesting-depth cap so a
//! hostile request line (`[[[[…`) errors instead of overflowing the stack.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// A JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an integer value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on an object (first match wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builder for insertion-ordered objects: `obj().push("k", v).build()`.
#[derive(Default)]
pub struct ObjBuilder {
    members: Vec<(String, Json)>,
}

/// Starts an object builder.
pub fn obj() -> ObjBuilder {
    ObjBuilder::default()
}

impl ObjBuilder {
    /// Appends a member.
    pub fn push(mut self, key: &str, value: Json) -> ObjBuilder {
        self.members.push((key.to_owned(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.members)
    }
}

/// Integers within the f64-exact range print without a fraction; anything
/// else prints through Rust's shortest-roundtrip float formatting.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the least-surprising stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// RFC 8259 string escaping (same rules as the lint renderer).
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: a message plus the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

/// Serializes to a compact (single-line) JSON document.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // A run of plain bytes: scan to the next quote, escape,
                    // or control byte and copy the slice. The input came in
                    // as a &str, so these boundaries are char boundaries.
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(run) => out.push_str(run),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_request_shaped_object() {
        let text = r#"{"op":"analyze","id":"r1","workers":4,"extended":false,"grammar":"%% e : e '+' e | NUM ;"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(v.get("workers").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("extended").and_then(Json::as_bool), Some(false));
        assert_eq!(v.to_string(), text, "writer preserves member order");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::num(42u32).to_string(), "42");
        assert_eq!(Json::Num(1.25).to_string(), "1.25");
    }

    #[test]
    fn builder_preserves_order() {
        let v = obj()
            .push("z", Json::num(1u32))
            .push("a", Json::str("x"))
            .build();
        assert_eq!(v.to_string(), r#"{"z":1,"a":"x"}"#);
    }

    #[test]
    fn unicode_strings_pass_through() {
        let v = parse("\"héllo — 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — 世界"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
