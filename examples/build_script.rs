//! The `build.rs` workflow, runnable outside a build script.
//!
//! Run with `cargo run --example build_script`.
//!
//! In a real parser crate the whole integration is one line in `build.rs`:
//!
//! ```no_run
//! fn main() {
//!     lalrcex::build::verify("src/grammar.y").unwrap();
//! }
//! ```
//!
//! A clean grammar builds; a conflicted one fails the build with the full
//! counterexample report in the compiler output (the `Debug` impl behind
//! that `unwrap` renders `Display`, so the panic message *is* the
//! report). This example walks the same machinery against the committed
//! yacc twin of the paper's Figure 1 grammar — which has three conflicts,
//! all provably ambiguous — and against a clean grammar, and checks that
//! the report a build script shows is byte-identical to what the
//! interactive `lalrcex cex` pipeline prints for the DSL original.

// The doctest shows a complete build.rs; its `fn main` is the point.
#![allow(clippy::needless_doctest_main)]

use std::time::Duration;

use lalrcex::build::{Verifier, VerifyError};
use lalrcex::{AnalysisRequest, GrammarSource, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let twin = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/yacc_twins/figure1.y");

    // 1. A conflicted grammar: `verify` returns the structured outcome.
    //    The `.y` extension routes the text through the yacc frontend;
    //    the budgets are generous so the unifying searches always finish
    //    and the report is deterministic.
    let verifier = || {
        Verifier::new()
            .time_limit(Duration::from_secs(600))
            .total_limit(Duration::from_secs(3600))
            .workers(1)
    };
    let found = match verifier().verify_path(twin) {
        Err(VerifyError::Conflicts(found)) => found,
        other => return Err(format!("expected conflicts, got {other:?}").into()),
    };
    println!("== what a failing build log shows ==\n{found}");
    assert_eq!(found.conflicts, 3, "figure1 has three conflicts");
    assert_eq!(found.unifying, 3, "all three are provably ambiguous");

    // 2. The report matches the interactive pipeline on the DSL original,
    //    byte for byte: a build-script failure and a `lalrcex cex` run
    //    never disagree about the same grammar.
    let dsl = lalrcex::corpus::by_name("figure1").expect("corpus").text();
    let reply = Session::new().analyze(
        &AnalysisRequest::new(GrammarSource::dsl(dsl))
            .time_limit(Duration::from_secs(600))
            .cumulative_limit(Duration::from_secs(3600))
            .workers(1),
    )?;
    assert_eq!(
        found.report,
        reply.render_text(),
        "build-script report must match the interactive report"
    );

    // 3. `on_conflicts` observes the outcome before the error is
    //    returned — the hook for custom `cargo:warning=` forwarding.
    let mut saw = false;
    let seen = std::rc::Rc::new(std::cell::Cell::new(0usize));
    let seen_cb = std::rc::Rc::clone(&seen);
    let result = verifier()
        .on_conflicts(move |f| seen_cb.set(f.conflicts))
        .verify_path(twin);
    if let Err(VerifyError::Conflicts(f)) = &result {
        saw = seen.get() == f.conflicts;
    }
    assert!(saw, "the callback runs before the error returns");

    // 4. A clean grammar verifies: this is the quiet everyday path.
    let ok = verifier().verify_source(
        GrammarSource::yacc("%token NUM\n%% e : e '+' NUM { $$ = $1 + $3; } | NUM ;\n"),
        "clean.y",
    )?;
    println!(
        "== clean grammar == {}: {} states, {} productions, no conflicts",
        ok.label, ok.states, ok.productions
    );
    Ok(())
}
