//! Quickstart: diagnose every conflict in a small grammar.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This is the paper's headline use case: you wrote a grammar, the parser
//! generator says "3 conflicts", and you want to know *why* — with a
//! concrete input that demonstrates each problem.

use lalrcex::core::{analyze, format_report};
use lalrcex::grammar::Grammar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1 grammar: a toy statement language with three
    // latent problems (dangling else, ambiguous +, and a subtle
    // tokenization ambiguity between `num` and `digit`).
    let grammar = Grammar::parse(
        "%start stmt
         %%
         stmt : 'if' expr 'then' stmt 'else' stmt
              | 'if' expr 'then' stmt
              | expr '?' stmt stmt
              | 'arr' '[' expr ']' ':=' expr
              ;
         expr : num | expr '+' expr ;
         num  : digit | num digit ;",
    )?;

    let report = analyze(&grammar);
    println!(
        "{} conflicts, {} proven ambiguous\n",
        report.reports.len(),
        report.unifying_count()
    );
    for conflict_report in &report.reports {
        println!("{}", format_report(&grammar, conflict_report));
    }

    // Every conflict here is a genuine ambiguity, so every report carries
    // a unifying counterexample: one string, two derivations.
    assert_eq!(report.unifying_count(), 3);
    Ok(())
}
