//! Audit a full-scale grammar from the evaluation corpus.
//!
//! Run with `cargo run --release --example audit_corpus [NAME]`.
//!
//! Loads one of the Table 1 grammars (default: `SQL.1`), reports every
//! conflict with its counterexample, and cross-checks each claimed
//! ambiguity with the independent Earley oracle — the end-to-end pipeline
//! a grammar author would run in CI.

use lalrcex::core::{Analyzer, CexConfig, ExampleKind};
use lalrcex::earley::forest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SQL.1".into());
    let entry = lalrcex::corpus::by_name(&name)
        .unwrap_or_else(|| panic!("unknown corpus grammar {name}; see lalrcex_corpus::all()"));
    let g = entry.load()?;
    println!(
        "{name}: {} nonterminals, {} productions (paper row: {} / {})",
        g.nonterminal_count() - 1,
        g.prod_count(),
        entry.paper.nonterminals,
        entry.paper.productions,
    );

    let mut analyzer = Analyzer::new(&g);
    let conflicts: Vec<_> = analyzer.tables().conflicts().to_vec();
    println!("{} conflicts", conflicts.len());

    let cfg = CexConfig::default();
    let mut confirmed = 0usize;
    for c in &conflicts {
        let r = analyzer.analyze_conflict(c, &cfg);
        match r.kind() {
            Some(ExampleKind::Unifying) => {
                let u = r.unifying.as_ref().expect("unifying example present");
                let form = u.sentential_form();
                let ok = forest::is_ambiguous_form(&g, u.nonterminal, &form);
                if ok {
                    confirmed += 1;
                }
                println!(
                    "  state #{} on {}: ambiguous {} — {} [oracle: {}]",
                    c.state.index(),
                    g.display_name(c.terminal),
                    g.display_name(u.nonterminal),
                    u.derivation1.flat(&g),
                    if ok { "confirmed" } else { "UNCONFIRMED" },
                );
            }
            other => {
                println!(
                    "  state #{} on {}: {:?}",
                    c.state.index(),
                    g.display_name(c.terminal),
                    other
                );
            }
        }
    }
    println!("{confirmed} ambiguities independently confirmed");
    Ok(())
}
