//! A calculator front end: from conflicted grammar to working parser.
//!
//! Run with `cargo run --example calculator`.
//!
//! Demonstrates the full toolkit on the classic expression-grammar
//! workflow:
//!
//! 1. the naive grammar has shift/reduce conflicts — the counterexample
//!    engine shows each one is a real ambiguity;
//! 2. precedence/associativity declarations resolve them (§2.4);
//! 3. the resolved tables drive the deterministic LR parser on real token
//!    streams, and the tree shapes confirm the declarations did what we
//!    meant.

use lalrcex::core::analyze;
use lalrcex::grammar::{Derivation, Grammar, SymbolId};
use lalrcex::lr::{parser, Automaton};

fn tokens(g: &Grammar, names: &[&str]) -> Vec<SymbolId> {
    names
        .iter()
        .map(|n| g.symbol_named(n).expect("token name"))
        .collect()
}

/// Pretty-print a parse tree with indentation.
fn show(g: &Grammar, d: &Derivation, indent: usize) {
    match d {
        Derivation::Leaf(s) => println!("{:indent$}{}", "", g.display_name(*s)),
        Derivation::Node(s, children) => {
            println!("{:indent$}{}", "", g.display_name(*s));
            for c in children {
                show(g, c, indent + 2);
            }
        }
        Derivation::Dot => {}
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: the ambiguous version.
    let naive = Grammar::parse("%% e : e '+' e | e '*' e | NUM | '(' e ')' ;")?;
    let report = analyze(&naive);
    println!("naive grammar: {} conflicts", report.reports.len());
    for r in &report.reports {
        if let Some(u) = &r.unifying {
            println!(
                "  ambiguity of {}: {}",
                naive.display_name(u.nonterminal),
                u.derivation1.flat(&naive)
            );
        }
    }
    assert!(
        report.unifying_count() > 0,
        "the naive grammar is ambiguous"
    );

    // Step 2: declare precedence, conflicts disappear.
    let fixed = Grammar::parse(
        "%left '+'
         %left '*'
         %% e : e '+' e | e '*' e | NUM | '(' e ')' ;",
    )?;
    let auto = Automaton::build(&fixed);
    let tables = auto.tables(&fixed);
    println!(
        "\nwith precedence: {} conflicts, {} silently resolved",
        tables.conflicts().len(),
        tables.resolutions().len()
    );
    assert!(tables.conflicts().is_empty());

    // Step 3: parse. `NUM + NUM * NUM` must group as NUM + (NUM * NUM).
    let input = tokens(&fixed, &["NUM", "+", "NUM", "*", "NUM", "+", "NUM"]);
    let tree = parser::parse(&fixed, &auto, &tables, &input)?;
    println!("\nparse tree of NUM + NUM * NUM + NUM:");
    show(&fixed, &tree, 2);

    // Left associativity: the root's left child spans the first five
    // tokens (NUM + NUM * NUM), the right child is the last NUM.
    let Derivation::Node(_, children) = &tree else {
        unreachable!()
    };
    assert_eq!(children[0].leaves().len(), 5);
    assert_eq!(children[2].leaves().len(), 1);
    println!("\nprecedence and associativity verified through tree shapes");
    Ok(())
}
