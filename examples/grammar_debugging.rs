//! Debugging a real ambiguity with counterexamples: the dangling else.
//!
//! Run with `cargo run --example grammar_debugging`.
//!
//! The workflow the paper argues for (§1, §3): instead of staring at LR
//! item dumps, read one counterexample, understand the ambiguity, and fix
//! the *grammar* (here with the classic matched/unmatched-statement
//! factoring), then confirm the fix with the same tool — and with the
//! independent GLR oracle.

use lalrcex::core::analyze;
use lalrcex::grammar::Grammar;
use lalrcex::lr::{glr, Automaton};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broken = Grammar::parse(
        "%start stmt
         %%
         stmt : 'if' expr 'then' stmt 'else' stmt
              | 'if' expr 'then' stmt
              | 'print' expr
              ;
         expr : ID ;",
    )?;
    let report = analyze(&broken);
    let r = &report.reports[0];
    let u = r.unifying.as_ref().expect("dangling else is ambiguous");
    println!("conflict explained by: {}", u.derivation1.flat(&broken));
    println!("  as: {}", u.derivation1.pretty(&broken));
    println!("  or: {}", u.derivation2.pretty(&broken));

    // Confirm with the GLR oracle: the counterexample really parses twice.
    let auto = Automaton::build(&broken);
    let form = u.sentential_form();
    assert!(glr::is_ambiguous_sentence(&broken, &auto, &form));
    println!("\nGLR oracle confirms 2 parses of the counterexample");

    // The fix: factor statements into matched/unmatched so an `else`
    // always binds to the nearest unmatched `if`.
    let fixed = Grammar::parse(
        "%start stmt
         %%
         stmt : matched | unmatched ;
         matched : 'if' expr 'then' matched 'else' matched
                 | 'print' expr
                 ;
         unmatched : 'if' expr 'then' stmt
                   | 'if' expr 'then' matched 'else' unmatched
                   ;
         expr : ID ;",
    )?;
    let fixed_report = analyze(&fixed);
    println!(
        "\nafter the matched/unmatched factoring: {} conflicts",
        fixed_report.reports.len()
    );
    assert!(fixed_report.reports.is_empty());

    // And the once-ambiguous sentence now has exactly one parse.
    let fixed_auto = Automaton::build(&fixed);
    let sentence: Vec<_> = [
        "if", "ID", "then", "if", "ID", "then", "print", "ID", "else", "print", "ID",
    ]
    .iter()
    .map(|n| fixed.symbol_named(n).unwrap())
    .collect();
    let parses = glr::parses(&fixed, &fixed_auto, &sentence, glr::Limits::default());
    assert_eq!(parses.len(), 1);
    println!("the fixed grammar parses the ambiguous sentence uniquely");
    Ok(())
}
