//! Classify every conflict of the evaluation corpus — the data behind the
//! EXPERIMENTS.md provenance table.
//!
//! Run with `cargo run --release --example classify_corpus`.
//!
//! For each Table 1 grammar this runs only the provenance precomputation
//! (no counterexample searches), printing the three-way classification
//! counts, the canonical LR(1) states the merge check explored, and the
//! precompute wall time. The whole corpus takes a few seconds.

use lalrcex::core::{Analyzer, Classification, ProvenanceOutcome};

fn main() {
    println!(
        "{:<14} {:>6} {:>5} {:>6} {:>5} {:>10} {:>9}",
        "grammar", "conf", "tac", "merge", "prec", "lr1-states", "prov(ms)"
    );
    let mut total = (0u64, 0u64, 0u64, 0u64);
    for entry in lalrcex::corpus::all() {
        let g = entry.load().expect("corpus grammars parse");
        let analyzer = Analyzer::new(&g);
        let p = analyzer
            .engine()
            .provenance()
            .expect("provenance never faults on the corpus");
        let c = p.counts();
        println!(
            "{:<14} {:>6} {:>5} {:>6} {:>5} {:>10} {:>9.1}",
            entry.name,
            p.conflicts.len(),
            c.true_candidates,
            c.merge_artifacts,
            c.precedence_resolved,
            p.lr1_states,
            p.compute_time.as_secs_f64() * 1e3,
        );
        for o in &p.conflicts {
            if let ProvenanceOutcome::Classified(cp) = o {
                if cp.classification == Classification::MergeArtifact {
                    let m = cp.merge.as_ref().expect("merge artifacts carry evidence");
                    println!(
                        "  merge artifact: state {} merged {} LR(1) variants",
                        m.merged_state.index(),
                        m.variant_count
                    );
                }
            }
        }
        total.0 += p.conflicts.len() as u64;
        total.1 += c.true_candidates;
        total.2 += c.merge_artifacts;
        total.3 += c.precedence_resolved;
    }
    println!(
        "total: {} conflicts — {} true-ambiguity-candidate, {} merge-artifact; \
         {} precedence-resolved resolutions",
        total.0, total.1, total.2, total.3
    );
}
