//! Schema-v1 JSON report: golden-file pin plus determinism contract.
//!
//! The golden file (`snapshots/cex_report_v1.json`) is the compatibility
//! contract for `lalrcex cex --format json` and the serve protocol's
//! `report` member: any byte-level drift is a schema change and must be
//! reviewed. Regenerate deliberately with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test report_schema
//! ```

use std::time::Duration;

use lalrcex::api::json::{self, Json};
use lalrcex::{AnalysisRequest, Session};

/// The figure1 analysis is fully deterministic under default budgets (the
/// searches complete long before any time limit), so its document is a
/// stable golden.
fn figure1_document() -> String {
    let text = lalrcex::corpus::by_name("figure1").unwrap().text();
    let session = Session::new();
    let reply = session
        .analyze(&AnalysisRequest::new(text).label("figure1.y"))
        .expect("figure1 analyzes");
    let mut doc = reply.to_json().to_string();
    doc.push('\n');
    doc
}

#[test]
fn schema_v1_document_matches_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/snapshots/cex_report_v1.json");
    let doc = figure1_document();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &doc).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("snapshots/cex_report_v1.json exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        doc, golden,
        "schema-v1 document drifted from the golden file; if the change is \
         deliberate, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn document_shape_is_stable() {
    let doc = json::parse(figure1_document().trim()).unwrap();
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("file").and_then(Json::as_str), Some("figure1.y"));
    let g = doc.get("grammar").unwrap();
    for key in [
        "terminals",
        "nonterminals",
        "productions",
        "states",
        "conflicts",
    ] {
        assert!(g.get(key).and_then(Json::as_u64).is_some(), "grammar.{key}");
    }
    let conflicts = doc.get("conflicts").and_then(Json::as_arr).unwrap();
    assert!(!conflicts.is_empty());
    for c in conflicts {
        for key in [
            "state",
            "terminal",
            "kind",
            "reduce_item",
            "other_item",
            "outcome",
            "internal",
            "unifying",
            "nonunifying",
        ] {
            assert!(c.get(key).is_some(), "conflict member {key} must exist");
        }
    }
}

/// The document deliberately carries no wall-clock times or cache/memo
/// flags, so cold vs. warm sessions and any worker count serialize to the
/// same bytes.
#[test]
fn documents_are_byte_identical_cold_warm_and_across_workers() {
    let text = lalrcex::corpus::by_name("figure1").unwrap().text();
    let session = Session::new();
    let mut docs = Vec::new();
    for workers in [1usize, 4, 1] {
        let reply = session
            .analyze(
                &AnalysisRequest::new(text.as_str())
                    .label("figure1.y")
                    .workers(workers)
                    .time_limit(Duration::from_secs(3600)),
            )
            .unwrap();
        docs.push(reply.to_json().to_string());
    }
    assert_eq!(docs[0], docs[1], "workers=1 vs workers=4");
    assert_eq!(docs[0], docs[2], "cold vs warm cache");
}
