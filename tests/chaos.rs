//! Chaos suite: deterministic fault injection against the conflict engine.
//!
//! Compiled and run only with the `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test chaos
//! ```
//!
//! The invariants under test (ISSUE 3, tentpole 3):
//!
//! 1. **Every conflict yields a report.** Whatever a fault plan does to one
//!    conflict's diagnosis — panic mid-search, zero its budget, jump its
//!    clock — `analyze_all` still returns exactly one entry per conflict.
//! 2. **Containment is local.** The conflicts the plan did *not* touch
//!    produce byte-identical formatted reports to a clean run.
//! 3. **Worker-count independence.** Because probes are scoped to the
//!    conflict slot and each slot's diagnosis is single-threaded and
//!    deterministic, a faulted run at `workers = 1` and `workers = 4`
//!    produces byte-identical reports.
//!
//! Determinism hazard: the `spine.expand` probe sits inside the memoized
//! §4 spine search, and *which* conflict pays for a shared spine depends on
//! worker scheduling. Cross-worker assertions therefore only use the
//! per-conflict-deterministic probes (`engine.conflict`, `unify.expand`,
//! `nonunify.complete`).
//!
//! All searches here run under pure node budgets (huge time limits), so
//! clean runs are byte-deterministic and comparisons are exact.

#![cfg(feature = "failpoints")]

use std::time::Duration;

use lalrcex::core::faultpoint::{install, FaultAction, FaultPlan, NO_SCOPE};
use lalrcex::core::{
    format_report, CexConfig, ConflictOutcome, Engine, ExampleKind, GrammarReport, SearchConfig,
};
use lalrcex::grammar::Grammar;

fn load(name: &str) -> Grammar {
    lalrcex::corpus::by_name(name)
        .expect("corpus entry")
        .load()
        .expect("corpus grammar parses")
}

/// A configuration whose outcome depends only on deterministic node
/// budgets, never on the clock: runs are byte-identical across machines,
/// worker counts, and fault-plan repetitions.
fn deterministic(workers: usize) -> CexConfig {
    CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_secs(3600),
            max_configs: 5_000,
            ..SearchConfig::default()
        },
        cumulative_limit: Duration::from_secs(3600),
        workers,
        ..CexConfig::default()
    }
}

/// Runs `analyze_all` under an *empty* fault plan. Installing the empty
/// plan takes the chaos serialization lock, so a clean baseline can never
/// race against another test's installed triggers.
fn clean_run(g: &Grammar, workers: usize) -> GrammarReport {
    let _guard = install(FaultPlan::new());
    Engine::new(g).analyze_all(&deterministic(workers))
}

fn faulted_run(g: &Grammar, plan: FaultPlan, workers: usize) -> GrammarReport {
    let _guard = install(plan);
    Engine::new(g).analyze_all(&deterministic(workers))
}

fn formatted(g: &Grammar, r: &GrammarReport) -> Vec<String> {
    r.reports.iter().map(|x| format_report(g, x)).collect()
}

/// The acceptance scenario: a plan that panics inside ONE conflict's
/// unifying search. The report still has one entry per conflict, the
/// faulted slot is a structured `Internal` outcome from the `unifying`
/// phase, and every unfaulted slot is byte-identical to the clean run —
/// at `workers = 1` and `workers = 4` alike.
#[test]
fn panic_in_one_unifying_search_is_contained() {
    for name in ["figure1", "SQL.2", "C.3"] {
        let g = load(name);
        let clean = clean_run(&g, 1);
        let n = clean.reports.len();
        assert!(n > 0, "{name} has conflicts");
        // Fault the *last* slot so the test also covers mid-fleet slots on
        // multi-conflict grammars (slot 0 is the common easy case).
        let slot = (n - 1) as u64;
        for workers in [1usize, 4] {
            let plan = FaultPlan::new().trigger(slot, "unify.expand", 1, FaultAction::Panic);
            let faulted = faulted_run(&g, plan, workers);
            assert_eq!(faulted.reports.len(), n, "{name}: one report per conflict");
            assert_eq!(faulted.internal_count(), 1, "{name}: exactly one fault");
            let clean_fmt = formatted(&g, &clean);
            let faulted_fmt = formatted(&g, &faulted);
            for (i, r) in faulted.reports.iter().enumerate() {
                if i as u64 == slot {
                    let ConflictOutcome::Internal(e) = &r.outcome else {
                        panic!("{name}: faulted slot must be Internal, got {:?}", r.outcome);
                    };
                    assert_eq!(e.phase, "unifying");
                    assert!(e.message.contains("unify.expand"), "stable diagnostic");
                    assert!(
                        r.nonunifying.is_some(),
                        "{name}: faulted unifying search still degrades to the \
                         cheap nonunifying example"
                    );
                } else {
                    assert_eq!(
                        faulted_fmt[i], clean_fmt[i],
                        "{name} workers={workers}: unfaulted slot {i} must be \
                         byte-identical to the clean run"
                    );
                }
            }
        }
    }
}

/// A panic in the spine phase (the `engine.conflict` probe fires before the
/// spine search) faults the whole slot — nothing downstream can run — but
/// the remaining conflicts are untouched.
#[test]
fn panic_in_spine_phase_faults_only_that_slot() {
    let g = load("figure1");
    let clean = clean_run(&g, 1);
    for workers in [1usize, 4] {
        let plan = FaultPlan::new().trigger(1, "engine.conflict", 1, FaultAction::Panic);
        let faulted = faulted_run(&g, plan, workers);
        assert_eq!(faulted.reports.len(), clean.reports.len());
        let r = &faulted.reports[1];
        let ConflictOutcome::Internal(e) = &r.outcome else {
            panic!("slot 1 must fault, got {:?}", r.outcome);
        };
        assert_eq!(e.phase, "spine");
        assert!(r.unifying.is_none() && r.nonunifying.is_none());
        for i in [0usize, 2] {
            assert_eq!(
                format_report(&g, &faulted.reports[i]),
                format_report(&g, &clean.reports[i]),
            );
        }
    }
}

/// Non-panic actions degrade, they don't fault: a zeroed budget or a
/// clock jump in the unifying search ends it `TimedOut`, the slot keeps
/// its nonunifying fallback, and the outcome is `Completed`, not
/// `Internal`.
#[test]
fn budget_and_clock_faults_degrade_like_timeouts() {
    let g = load("figure1");
    for action in [FaultAction::BudgetZero, FaultAction::ClockJump] {
        let plan = FaultPlan::new().trigger(0, "unify.expand", 1, action);
        let faulted = faulted_run(&g, plan, 1);
        let r = &faulted.reports[0];
        assert_eq!(
            r.kind(),
            Some(ExampleKind::NonunifyingTimeout),
            "{action:?}"
        );
        assert!(r.nonunifying.is_some(), "{action:?} keeps the fallback");
        assert_eq!(faulted.internal_count(), 0);
    }
}

/// Every slot faults (wildcard scope, first `unify.expand` hit): the
/// worker pool survives all of them, each conflict still reports, and the
/// engine — whose spine-memo mutex may have been poisoned by the unwinds —
/// remains usable for a clean run afterwards.
#[test]
fn worker_pool_survives_a_panic_storm() {
    let g = load("figure1");
    let clean = clean_run(&g, 1);
    let engine = Engine::new(&g);
    {
        let _guard =
            install(FaultPlan::new().trigger(NO_SCOPE, "unify.expand", 1, FaultAction::Panic));
        let storm = engine.analyze_all(&deterministic(4));
        assert_eq!(storm.reports.len(), clean.reports.len());
        assert_eq!(storm.internal_count(), storm.reports.len());
        for r in &storm.reports {
            assert!(r.is_internal());
            assert!(r.nonunifying.is_some(), "fallback survives the storm");
        }
    }
    // Same engine, clean plan: poisoned memo locks must have recovered.
    let _guard = install(FaultPlan::new());
    let after = engine.analyze_all(&deterministic(1));
    assert_eq!(formatted(&g, &after), formatted(&g, &clean));
}

/// The memory governor's shed point under a fixed `--max-rss-mb` budget.
/// The lease is recomputed on the cancel stride from *actual* arena and
/// table capacities — a pure function of the worker-invariant insertion
/// sequence — so the same heavy conflict must shed at exactly the same
/// explored count on every run and at every intra-conflict shard width.
#[test]
fn governor_shed_point_is_deterministic_across_shard_widths() {
    use lalrcex::core::{
        unifying_search_session, CancelToken, MemoryGovernor, SearchMetrics, SearchOutcome,
        SearchSession, ShardBudget,
    };

    let _guard = install(FaultPlan::new());
    let g = load("stackovf08");
    let engine = Engine::new(&g);
    let cfg = SearchConfig {
        time_limit: Duration::from_secs(3600),
        max_configs: 20_000,
        cancel_stride: 64,
        ..SearchConfig::default()
    };

    // Pick the heaviest conflict: the one that explores the most under an
    // ungoverned bounded run (a deep stackovf08 search).
    let mut heavy = (0usize, 0u64);
    let mut ungoverned = Vec::new();
    for (i, c) in engine.tables().conflicts().iter().enumerate() {
        let (spine, _) = engine.spine(c);
        let cancel = CancelToken::new();
        let governor = MemoryGovernor::unlimited();
        let session = SearchSession {
            cancel: &cancel,
            governor: &governor,
            shards: None,
        };
        let mut m = SearchMetrics::default();
        unifying_search_session(
            &g,
            engine.automaton(),
            engine.graph(),
            c,
            &spine.states,
            &cfg,
            &session,
            &mut m,
        );
        if m.explored > heavy.1 {
            heavy = (i, m.explored);
        }
        ungoverned.push(m.explored);
    }
    let conflict = &engine.tables().conflicts()[heavy.0];
    let (spine, _) = engine.spine(conflict);
    assert!(heavy.1 > 15_000, "stackovf08 has a deep conflict");

    // Fixed 512 KiB limit: small enough that the deep frontier crosses it
    // mid-run, large enough that the search gets going first.
    let mut baseline: Option<(std::mem::Discriminant<SearchOutcome>, SearchMetrics)> = None;
    for repeat in 0..2 {
        for permits in [0usize, 1, 3] {
            let cancel = CancelToken::new();
            let governor = MemoryGovernor::with_limit_bytes(512 * 1024);
            let budget = ShardBudget::new(permits);
            let session = SearchSession {
                cancel: &cancel,
                governor: &governor,
                shards: Some(&budget),
            };
            let mut m = SearchMetrics::default();
            let out = unifying_search_session(
                &g,
                engine.automaton(),
                engine.graph(),
                conflict,
                &spine.states,
                &cfg,
                &session,
                &mut m,
            );
            assert!(
                matches!(out, SearchOutcome::TimedOut),
                "governed search drains into TimedOut, got {out:?}"
            );
            assert!(m.sheds >= 1, "the 512 KiB limit must actually bite");
            assert!(
                m.explored < ungoverned[heavy.0],
                "shedding cut the search short"
            );
            assert_eq!(governor.live_bytes(), 0, "lease released on return");
            let key = (std::mem::discriminant(&out), m);
            match &baseline {
                None => baseline = Some(key),
                Some((d, b)) => {
                    assert_eq!(*d, key.0, "same outcome at permits={permits}");
                    for (name, got, want) in [
                        ("explored", key.1.explored, b.explored),
                        ("enqueued", key.1.enqueued, b.enqueued),
                        ("deduped", key.1.deduped, b.deduped),
                        ("frontier_peak", key.1.frontier_peak, b.frontier_peak),
                        ("arena_cells", key.1.arena_cells, b.arena_cells),
                        ("live_bytes_peak", key.1.live_bytes_peak, b.live_bytes_peak),
                        ("sheds", key.1.sheds, b.sheds),
                    ] {
                        assert_eq!(
                            got, want,
                            "{name} must match at repeat={repeat} permits={permits}"
                        );
                    }
                }
            }
        }
    }
}

/// The lint masking probe contains its own faults: a panic inside
/// `probe_resolution` yields `ResolutionProbe::Internal`, and the next
/// probe on the same engine runs clean.
#[test]
fn lint_probe_contains_its_fault() {
    use lalrcex::core::engine::ResolutionProbe;

    let g = Grammar::parse("%left '+' %% e : e '+' e | NUM ;").unwrap();
    let engine = Engine::new(&g);
    let res = engine.tables().resolutions()[0];
    let _guard = install(FaultPlan::new().trigger(NO_SCOPE, "lint.probe", 1, FaultAction::Panic));
    match engine.probe_resolution(&res, 1 << 16) {
        ResolutionProbe::Internal(e) => assert_eq!(e.phase, "lint.probe"),
        other => panic!("expected Internal, got {other:?}"),
    }
    // The trigger fired once; the second probe is clean and proves the
    // masked ambiguity as usual.
    match engine.probe_resolution(&res, 1 << 16) {
        ResolutionProbe::Ambiguous(_) => {}
        other => panic!("expected Ambiguous after the fault, got {other:?}"),
    }
}

/// Property sweep: PRNG-seeded single-trigger plans over the
/// per-conflict-deterministic probes. For every seed, (a) both worker
/// counts return one report per conflict, (b) the two runs are
/// byte-identical to *each other*, and (c) slots the plan cannot have
/// touched are byte-identical to the clean baseline.
#[test]
fn seeded_plans_are_reproducible_across_worker_counts() {
    let probes = ["engine.conflict", "unify.expand", "nonunify.complete"];
    for name in ["figure1", "SQL.2"] {
        let g = load(name);
        let clean = clean_run(&g, 1);
        let n = clean.reports.len() as u64;
        for seed in 0..12u64 {
            let run1 = faulted_run(&g, FaultPlan::seeded(seed, n, &probes, 40), 1);
            let run4 = faulted_run(&g, FaultPlan::seeded(seed, n, &probes, 40), 4);
            assert_eq!(run1.reports.len() as u64, n, "{name} seed {seed}");
            assert_eq!(
                formatted(&g, &run1),
                formatted(&g, &run4),
                "{name} seed {seed}: workers=1 vs workers=4 must agree"
            );
            let clean_fmt = formatted(&g, &clean);
            let fmt = formatted(&g, &run1);
            let differing = (0..n as usize).filter(|&i| fmt[i] != clean_fmt[i]).count();
            assert!(
                differing <= 1,
                "{name} seed {seed}: a single-trigger plan may perturb at \
                 most one slot, saw {differing}"
            );
        }
    }
}

/// The serve loop under fault injection: a *persistent* plan that panics
/// inside one conflict's unifying search (armed for the first run and the
/// supervised retry alike) still yields an `ok:true` analyze response —
/// the fault is contained to its conflict slot and surfaced as
/// `internal_count` once supervision gives up — and the loop keeps
/// serving: a fresh loop under a clean plan produces a report that
/// matches a run that was never faulted.
#[test]
fn serve_contains_engine_faults_per_request() {
    use lalrcex::api::json::{self, Json};
    use lalrcex::service::{serve, ServeOptions};
    use std::io::Cursor;

    let text = lalrcex::corpus::by_name("figure1")
        .expect("corpus entry")
        .text();
    let analyze = format!(
        r#"{{"op":"analyze","id":"a","grammar":{},"file":"figure1.y"}}"#,
        Json::str(&text)
    );
    let run_one = |plan: FaultPlan| -> Json {
        let _guard = install(plan);
        let input = format!("{}\n{}\n", analyze, r#"{"op":"shutdown","id":"z"}"#);
        let mut out = Vec::new();
        let summary = serve(
            Cursor::new(input.into_bytes()),
            &mut out,
            &ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        );
        assert!(summary.shutdown);
        assert_eq!(
            summary.errors, 0,
            "a contained fault is not a protocol error"
        );
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| json::parse(l).expect("valid response lines"))
            .find(|r| r.get("id").and_then(Json::as_str) == Some("a"))
            .expect("analyze response")
    };

    let clean = run_one(FaultPlan::new());
    assert_eq!(clean.get("internal_count").and_then(Json::as_u64), Some(0));

    let faulted = run_one(
        FaultPlan::new()
            .trigger(0, "unify.expand", 1, FaultAction::Panic)
            .trigger(0, "unify.expand", 2, FaultAction::Panic),
    );
    assert_eq!(faulted.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        faulted.get("internal_count").and_then(Json::as_u64),
        Some(1),
        "the fault is contained to its conflict slot"
    );
    assert_eq!(
        faulted.get("retried_slots").and_then(Json::as_u64),
        Some(1),
        "supervision retried once before giving up on the persistent fault"
    );
    let conflicts = faulted
        .get("report")
        .and_then(|r| r.get("conflicts"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(
        conflicts[0].get("outcome").and_then(Json::as_str),
        Some("internal")
    );
    assert!(
        conflicts[0].get("internal").unwrap().get("phase").is_some(),
        "structured fault detail survives into the document"
    );

    // Fresh serve loop, clean plan: byte-identical to the first clean run.
    let again = run_one(FaultPlan::new());
    assert_eq!(
        again.get("report").unwrap().to_string(),
        clean.get("report").unwrap().to_string(),
        "a fault in one serve loop leaves no residue for the next"
    );
}

/// End-to-end process check: the CLI built with `failpoints` honours
/// `LALRCEX_FAULT_PLAN` and maps a contained fault to the partial-failure
/// exit code 3 (a clean conflict-bearing run exits 1), at both worker
/// counts.
#[test]
fn cli_exits_with_partial_failure_code() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let run = |plan: Option<&str>, workers: &str| {
        let mut cmd = std::process::Command::new(&cargo);
        cmd.args([
            "run",
            "-q",
            "-p",
            "lalrcex-cli",
            "--features",
            "failpoints",
            "--",
            "--workers",
            workers,
            "crates/corpus/grammars/figure1.y",
        ]);
        cmd.env_remove("LALRCEX_FAULT_PLAN");
        if let Some(p) = plan {
            cmd.env("LALRCEX_FAULT_PLAN", p);
        }
        cmd.output().expect("cargo run lalrcex-cli")
    };
    for workers in ["1", "4"] {
        let clean = run(None, workers);
        assert_eq!(clean.status.code(), Some(1), "conflicts found, no faults");
        let faulted = run(Some("0:unify.expand:1:panic"), workers);
        assert_eq!(
            faulted.status.code(),
            Some(3),
            "workers={workers}: contained fault must exit 3; stderr: {}",
            String::from_utf8_lossy(&faulted.stderr)
        );
        let stdout = String::from_utf8_lossy(&faulted.stdout);
        assert!(
            stdout.contains("Internal fault while diagnosing this conflict"),
            "report carries the contained-fault entry; got:\n{stdout}"
        );
        assert_eq!(
            stdout.matches("conflict found in state").count(),
            3,
            "one report entry per conflict"
        );
    }
    // A malformed plan must abort loudly with the usage exit code.
    let bad = run(Some("not-a-plan"), "1");
    assert_eq!(bad.status.code(), Some(2), "typo'd fault plan exits 2");
}

/// The provenance precomputation contains its own faults at both
/// boundaries. A trigger *scoped to one conflict slot* degrades exactly
/// that slot to `Internal` (phase `"provenance.compute"`) and leaves every
/// other slot's rendered provenance byte-identical to a clean engine's. An
/// *unscoped* trigger fails the whole query — and because errors are not
/// memoized, the next call on the same engine recomputes clean.
#[test]
fn provenance_probe_contains_its_fault() {
    use lalrcex::core::{format_provenance, ProvenanceOutcome};

    let g = load("figure1");

    let clean: Vec<String> = {
        let engine = Engine::new(&g);
        let p = engine.provenance().expect("clean run");
        assert_eq!(p.counts().internal, 0);
        p.conflicts
            .iter()
            .map(|o| match o {
                ProvenanceOutcome::Classified(cp) => format_provenance(&g, cp),
                ProvenanceOutcome::Internal(e) => panic!("clean run faulted: {e}"),
            })
            .collect()
    };
    assert_eq!(clean.len(), 3, "figure1 has three conflicts");

    // Scoped fault: only slot 1 degrades.
    {
        let engine = Engine::new(&g);
        let _guard =
            install(FaultPlan::new().trigger(1, "provenance.compute", 1, FaultAction::Panic));
        let p = engine.provenance().expect("slot faults are contained");
        assert_eq!(p.counts().internal, 1);
        for (i, o) in p.conflicts.iter().enumerate() {
            match o {
                ProvenanceOutcome::Internal(e) => {
                    assert_eq!(i, 1, "only the scoped slot faults");
                    assert_eq!(e.phase, "provenance.compute");
                }
                ProvenanceOutcome::Classified(cp) => {
                    assert_eq!(format_provenance(&g, cp), clean[i], "slot {i} untouched");
                }
            }
        }
    }

    // Unscoped fault: the whole query fails — and because errors are not
    // memoized, the same engine recomputes clean once the plan is gone
    // (an any-scope trigger would re-fire at each slot's first hit, so
    // the guard must drop before the retry).
    {
        let engine = Engine::new(&g);
        {
            let _guard = install(FaultPlan::new().trigger(
                NO_SCOPE,
                "provenance.compute",
                1,
                FaultAction::Panic,
            ));
            let err = engine.provenance().expect_err("whole-query fault");
            assert_eq!(err.phase, "provenance.compute");
        }
        let p = engine.provenance().expect("retry after fault is clean");
        let again: Vec<String> = p
            .conflicts
            .iter()
            .map(|o| match o {
                ProvenanceOutcome::Classified(cp) => format_provenance(&g, cp),
                ProvenanceOutcome::Internal(e) => panic!("retry faulted: {e}"),
            })
            .collect();
        assert_eq!(again, clean, "retry matches the never-faulted engine");
    }
}

/// Fault-retry supervision at the session layer: after a one-shot fault
/// leaves a slot `Internal`, `retry_internal_slots` re-runs it under the
/// same slot scope — the spent trigger cannot re-fire, so the slot
/// recovers to an outcome byte-identical to a never-faulted run, and the
/// supervision counters record the retry and the recovery.
#[test]
fn supervised_slot_retry_recovers_one_shot_faults() {
    use lalrcex::api::{AnalysisRequest, Session};

    let g = load("figure1");
    let clean = clean_run(&g, 1);
    let text = lalrcex::corpus::by_name("figure1").unwrap().text();

    let _guard = install(FaultPlan::new().trigger(0, "unify.expand", 1, FaultAction::Panic));
    let session = Session::new();
    let request = AnalysisRequest::new(text).config(deterministic(1));
    let mut reply = session.analyze(&request).expect("contained fault");
    assert_eq!(reply.report.internal_count(), 1, "slot 0 faulted");

    let retried = session.retry_internal_slots(&mut reply, &request);
    assert_eq!(retried, 1);
    assert_eq!(
        reply.report.internal_count(),
        0,
        "the one-shot fault was spent on the first run, so the retry \
         recovers the slot"
    );
    assert_eq!(reply.report.stats.slot_retries, 1);
    assert_eq!(reply.report.stats.slots_recovered, 1);
    assert_eq!(reply.report.reports[0].stats.retries, 1);
    assert_eq!(
        formatted(&g, &reply.report),
        formatted(&g, &clean),
        "the recovered report is byte-identical to a never-faulted run"
    );
}

/// A *persistent* fault (triggers armed for both the first run and the
/// retry) stays `Internal` after supervision: exactly one retry is spent,
/// nothing recovers, and the loop does not retry again.
#[test]
fn persistent_fault_stays_internal_after_one_retry() {
    use lalrcex::api::{AnalysisRequest, Session};

    let text = lalrcex::corpus::by_name("figure1").unwrap().text();
    let _guard = install(
        FaultPlan::new()
            .trigger(0, "unify.expand", 1, FaultAction::Panic)
            .trigger(0, "unify.expand", 2, FaultAction::Panic),
    );
    let session = Session::new();
    let request = AnalysisRequest::new(text).config(deterministic(1));
    let mut reply = session.analyze(&request).expect("contained fault");
    assert_eq!(reply.report.internal_count(), 1);

    let retried = session.retry_internal_slots(&mut reply, &request);
    assert_eq!(retried, 1, "exactly one supervised re-run");
    assert_eq!(reply.report.internal_count(), 1, "still faulted");
    assert_eq!(reply.report.stats.slot_retries, 1);
    assert_eq!(reply.report.stats.slots_recovered, 0);
}

/// `Session::evict` is the poisoned-engine hook: after eviction the next
/// analysis of the same text rebuilds from scratch (a cache miss), so no
/// state a fault may have corrupted is ever re-served.
#[test]
fn session_evict_forces_a_rebuild() {
    use lalrcex::api::{AnalysisRequest, Session};

    let _guard = install(FaultPlan::new());
    let text = lalrcex::corpus::by_name("figure1").unwrap().text();
    let session = Session::new();
    let request = AnalysisRequest::new(text.clone()).config(deterministic(1));
    assert!(!session.analyze(&request).unwrap().cache_hit);
    assert!(session.analyze(&request).unwrap().cache_hit);
    assert!(session.evict(&text));
    assert!(!session.evict(&text), "second evict finds nothing");
    assert!(
        !session.analyze(&request).unwrap().cache_hit,
        "the evicted engine is rebuilt, not re-served"
    );
}

/// The serve loop's two supervision tiers, end to end. A one-shot fault in
/// a conflict slot is healed by the slot retry: the response reports
/// `retried_slots:1`, `internal_count:0`, and a report byte-identical to a
/// clean run. A one-shot whole-request panic (the `serve.request` probe)
/// is healed by the evict-and-rerun tier: same clean outcome, no error
/// response ever emitted.
#[test]
fn serve_supervision_heals_one_shot_faults() {
    use lalrcex::api::json::{self, Json};
    use lalrcex::service::{serve, ServeOptions};
    use std::io::Cursor;

    let text = lalrcex::corpus::by_name("figure1").unwrap().text();
    let analyze = format!(
        r#"{{"op":"analyze","id":"a","grammar":{},"file":"figure1.y"}}"#,
        Json::str(&text)
    );
    let run_one = |plan: FaultPlan| -> Json {
        let _guard = install(plan);
        let input = format!("{}\n{}\n", analyze, r#"{"op":"shutdown","id":"z"}"#);
        let mut out = Vec::new();
        let summary = serve(
            Cursor::new(input.into_bytes()),
            &mut out,
            &ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        );
        assert!(summary.shutdown);
        assert_eq!(summary.errors, 0, "supervision never leaks an error");
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| json::parse(l).expect("valid response lines"))
            .find(|r| r.get("id").and_then(Json::as_str) == Some("a"))
            .expect("analyze response")
    };

    let clean = run_one(FaultPlan::new());
    let report = |r: &Json| r.get("report").unwrap().to_string();

    // Tier 1: slot retry.
    let slot = run_one(FaultPlan::new().trigger(0, "unify.expand", 1, FaultAction::Panic));
    assert_eq!(slot.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(slot.get("retried_slots").and_then(Json::as_u64), Some(1));
    assert_eq!(
        slot.get("internal_count").and_then(Json::as_u64),
        Some(0),
        "the retried slot reports Completed, not Internal"
    );
    assert_eq!(
        report(&slot),
        report(&clean),
        "healed run is byte-identical"
    );

    // Tier 2: whole-request evict-and-rerun.
    let whole = run_one(FaultPlan::new().trigger(NO_SCOPE, "serve.request", 1, FaultAction::Panic));
    assert_eq!(whole.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(whole.get("internal_count").and_then(Json::as_u64), Some(0));
    assert_eq!(
        report(&whole),
        report(&clean),
        "the evicted engine rebuilds and the re-run matches clean"
    );
}
