//! Property-based tests for the lint engine over randomly generated
//! grammars: linting must never panic, must be deterministic (two runs,
//! and two independent `Linter` instances, produce byte-identical output),
//! and its diagnostics must respect basic structural invariants.
//!
//! The random grammars come from the same hand-rolled [`XorShift`]-driven
//! generator idiom as `tests/props.rs`, extended with random precedence
//! declarations so the precedence-sensitive passes (L008/L009) are
//! exercised too. Every failure is reproducible from the printed seed.

use lalrcex::grammar::{Assoc, Grammar, GrammarBuilder};
use lalrcex::lint::{lint, render_json, render_text, worst_severity, LintConfig, Linter, Severity};
use lalrcex::prng::XorShift;

const NT_COUNT: usize = 3;
const T_COUNT: usize = 4;

fn nt_name(i: usize) -> String {
    format!("n{i}")
}

fn sym_name(code: u8) -> String {
    if (code as usize) < T_COUNT {
        format!("t{code}")
    } else {
        nt_name((code as usize - T_COUNT) % NT_COUNT)
    }
}

/// A random grammar: 3 nonterminals with 1–3 productions of 0–3 symbols
/// each, plus (half the time) 1–2 random precedence levels over the
/// terminal alphabet — the ingredient `tests/props.rs` doesn't need but
/// the precedence passes do.
fn gen_grammar(rng: &mut XorShift) -> Grammar {
    let mut b = GrammarBuilder::new();
    b.start(&nt_name(0));
    if rng.chance(1, 2) {
        let levels = 1 + rng.gen_range(2);
        for _ in 0..levels {
            let assoc = match rng.gen_range(3) {
                0 => Assoc::Left,
                1 => Assoc::Right,
                _ => Assoc::Nonassoc,
            };
            let n = 1 + rng.gen_range(2);
            let names: Vec<String> = (0..n)
                .map(|_| format!("t{}", rng.gen_range(T_COUNT)))
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b.prec_level(assoc, &refs);
        }
    }
    for i in 0..NT_COUNT {
        let lhs = nt_name(i);
        let nprods = 1 + rng.gen_range(3);
        for _ in 0..nprods {
            let len = rng.gen_range(4);
            let names: Vec<String> = (0..len)
                .map(|_| sym_name(rng.gen_range(T_COUNT + NT_COUNT) as u8))
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b.rule(&lhs, &refs);
        }
    }
    b.build().expect("random grammars are structurally valid")
}

const CASES: u64 = 64;

/// Linting a random grammar never panics, whatever the grammar's shape
/// (cycles, nullable storms, dead symbols, silenced conflicts, ...).
#[test]
fn lint_never_panics() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0x11AB + seed);
        let g = gen_grammar(&mut rng);
        let diags = lint(&g);
        // While here: structural invariants of every diagnostic.
        for d in &diags {
            assert!(
                d.code.id.starts_with('L'),
                "seed {seed}: code id {:?}",
                d.code.id
            );
            assert!(!d.message.is_empty(), "seed {seed}: empty message");
            if let Some(s) = d.span {
                assert!(s.line >= 1, "seed {seed}: 0 line in span");
            }
        }
        match worst_severity(&diags) {
            None => assert!(diags.is_empty()),
            Some(w) => assert!(diags.iter().any(|d| d.severity == w)),
        }
    }
}

/// Two lint runs of the same grammar are byte-identical — across repeated
/// calls, across independent `Linter` instances, and through both
/// renderers. The masking probe is budgeted in explored nodes, not wall
/// time, so this holds on arbitrarily loaded machines.
#[test]
fn lint_is_deterministic() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0x5EED + seed);
        let g = gen_grammar(&mut rng);
        let a = lint(&g);
        let b = lint(&g);
        assert_eq!(a, b, "seed {seed}: diagnostics differ between runs");
        let c = Linter::with_config(LintConfig::default()).run_grammar(&g);
        assert_eq!(a, c, "seed {seed}: diagnostics differ between linters");
        assert_eq!(
            render_text("g.y", &a),
            render_text("g.y", &b),
            "seed {seed}"
        );
        assert_eq!(
            render_json("g.y", &a),
            render_json("g.y", &b),
            "seed {seed}"
        );
    }
}

/// Diagnostics come out sorted by (line, code, message) — the order the
/// snapshot format and the CLI rely on.
#[test]
fn lint_output_is_sorted() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0x0DDE + seed);
        let g = gen_grammar(&mut rng);
        let diags = lint(&g);
        let keys: Vec<_> = diags
            .iter()
            .map(|d| (d.span.map_or(0, |s| s.line), d.code.id, d.message.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "seed {seed}");
    }
}

/// Error severity only ever comes from the passes documented to produce
/// it (unproductive nonterminals and reachable productive cycles); every
/// other pass warns.
#[test]
fn error_severity_is_reserved() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0xE507 + seed);
        let g = gen_grammar(&mut rng);
        for d in lint(&g) {
            if d.severity == Severity::Error {
                assert!(
                    d.code.id == "L002" || d.code.id == "L005",
                    "seed {seed}: unexpected error from {}",
                    d.code.id
                );
            }
        }
    }
}

/// Provenance classification and rendering over the same random grammars:
/// never panics, and its output respects the structural invariants the
/// explain surfaces rely on — every classified conflict renders to
/// non-empty text, every chain step renders, shift/reduce conflicts are
/// never merge artifacts (merging equal-core LR(1) states cannot
/// introduce one), and `counts()` agrees with a manual tally.
#[test]
fn provenance_rendering_never_panics() {
    use lalrcex::core::{
        format_provenance, render_chain_step, Analyzer, Classification, ProvenanceOutcome,
    };
    use lalrcex::lr::ConflictKind;
    for seed in 0..CASES {
        let mut rng = XorShift::new(0x9307 + seed);
        let g = gen_grammar(&mut rng);
        let analyzer = Analyzer::new(&g);
        let p = analyzer
            .engine()
            .provenance()
            .expect("provenance on a random grammar never faults");
        let counts = p.counts();
        let mut tac = 0u64;
        let mut merge = 0u64;
        let mut internal = 0u64;
        for outcome in &p.conflicts {
            match outcome {
                ProvenanceOutcome::Classified(cp) => {
                    match cp.classification {
                        Classification::TrueAmbiguityCandidate => tac += 1,
                        Classification::MergeArtifact => merge += 1,
                        Classification::PrecedenceResolved => {
                            panic!("seed {seed}: reported conflict classified resolved")
                        }
                    }
                    if matches!(cp.conflict.kind, ConflictKind::ShiftReduce { .. }) {
                        assert_eq!(
                            cp.classification,
                            Classification::TrueAmbiguityCandidate,
                            "seed {seed}: S/R conflict classified as merge artifact"
                        );
                    }
                    let text = format_provenance(&g, cp);
                    assert!(!text.is_empty(), "seed {seed}: empty rendering");
                    for step in &cp.chain {
                        assert!(
                            !render_chain_step(&g, step).is_empty(),
                            "seed {seed}: empty chain step"
                        );
                    }
                }
                ProvenanceOutcome::Internal(_) => internal += 1,
            }
        }
        assert_eq!(counts.true_candidates, tac, "seed {seed}");
        assert_eq!(counts.merge_artifacts, merge, "seed {seed}");
        assert_eq!(counts.internal, internal, "seed {seed}");
        assert_eq!(
            counts.precedence_resolved,
            p.resolutions.len() as u64,
            "seed {seed}"
        );
        for r in &p.resolutions {
            assert_eq!(
                r.classification,
                Classification::PrecedenceResolved,
                "seed {seed}"
            );
            for step in &r.chain {
                assert!(
                    !render_chain_step(&g, step).is_empty(),
                    "seed {seed}: empty resolution chain step"
                );
            }
        }
    }
}

/// Provenance is byte-deterministic: two independent engines over the
/// same grammar render identical chains, classifications, and merge
/// evidence for every conflict and resolution.
#[test]
fn provenance_is_deterministic() {
    use lalrcex::core::{format_provenance, Analyzer, ProvenanceOutcome};
    for seed in 0..CASES / 2 {
        let mut rng = XorShift::new(0xDE7E + seed);
        let g = gen_grammar(&mut rng);
        let render = |a: &Analyzer| -> String {
            let p = a.engine().provenance().expect("no faults injected");
            let mut out = String::new();
            for outcome in &p.conflicts {
                match outcome {
                    ProvenanceOutcome::Classified(cp) => out.push_str(&format_provenance(&g, cp)),
                    ProvenanceOutcome::Internal(e) => out.push_str(&format!("internal: {e}")),
                }
                out.push('\n');
            }
            out
        };
        let a = Analyzer::new(&g);
        let b = Analyzer::new(&g);
        assert_eq!(render(&a), render(&b), "seed {seed}: renderings differ");
        // The memoized second call is identical to the first.
        assert_eq!(render(&a), render(&a), "seed {seed}: memo differs");
    }
}

/// A tightened masking budget still yields deterministic (if possibly
/// different) results — the budget is part of the observable behavior,
/// not a race.
#[test]
fn masking_budget_is_deterministic() {
    let cfg = LintConfig {
        masking_max_configs: 64,
        masking_max_probes: 4,
    };
    for seed in 0..CASES / 2 {
        let mut rng = XorShift::new(0xB4D6 + seed);
        let g = gen_grammar(&mut rng);
        let a = Linter::with_config(cfg).run_grammar(&g);
        let b = Linter::with_config(cfg).run_grammar(&g);
        assert_eq!(a, b, "seed {seed}");
    }
}
