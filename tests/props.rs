//! Property-based tests over randomly generated grammars: the
//! counterexample engine must never claim an ambiguity the independent
//! Earley oracle cannot confirm, and the parsing engines must agree on
//! membership, whatever the grammar looks like.

use std::time::Duration;

use proptest::prelude::*;

use lalrcex::core::{validate, Analyzer, CexConfig, SearchConfig};
use lalrcex::earley::{chart, forest};
use lalrcex::grammar::{Grammar, GrammarBuilder, SymbolId};
use lalrcex::lr::{glr, Automaton};

/// A compact description of a random grammar: for each nonterminal, a few
/// productions over a mixed alphabet.
#[derive(Clone, Debug)]
struct GrammarSpec {
    /// prods[i] = productions of nonterminal `ni`; each production is a
    /// sequence of symbol codes (0..3 = terminals a..d, 4..7 = n0..n3).
    prods: Vec<Vec<Vec<u8>>>,
}

const NT_COUNT: usize = 3;

fn nt_name(i: usize) -> String {
    format!("n{i}")
}

fn sym_name(code: u8) -> String {
    match code {
        0..=3 => format!("t{}", code),
        other => nt_name((other - 4) as usize % NT_COUNT),
    }
}

fn arb_spec() -> impl Strategy<Value = GrammarSpec> {
    let prod = prop::collection::vec(0u8..7, 0..4);
    let prods_of_one = prop::collection::vec(prod, 1..4);
    prop::collection::vec(prods_of_one, NT_COUNT).prop_map(|prods| GrammarSpec { prods })
}

fn build(spec: &GrammarSpec) -> Grammar {
    let mut b = GrammarBuilder::new();
    b.start(&nt_name(0));
    for (i, prods) in spec.prods.iter().enumerate() {
        let lhs = nt_name(i);
        for p in prods {
            let names: Vec<String> = p.iter().map(|&c| sym_name(c)).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b.rule(&lhs, &refs);
        }
    }
    // Guarantee every nonterminal has at least one terminal production so
    // most random grammars are productive (unproductive ones are still
    // legal — the engine must not crash on them either way).
    b.build().expect("random grammars are structurally valid")
}

fn quick_cfg() -> CexConfig {
    CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_millis(300),
            max_configs: 1 << 14,
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Soundness: every claimed unifying counterexample is a genuine
    /// ambiguity (confirmed by the Earley forest oracle), and every
    /// produced derivation applies real productions of the grammar.
    #[test]
    fn unifying_claims_are_sound(spec in arb_spec()) {
        let g = build(&spec);
        let mut analyzer = Analyzer::new(&g);
        let report = analyzer.analyze_all(&quick_cfg());
        for r in &report.reports {
            if let Some(u) = &r.unifying {
                prop_assert!(validate::unifying_consistent(&g, u));
                prop_assert!(
                    forest::is_ambiguous_form(&g, u.nonterminal, &u.sentential_form()),
                    "claimed ambiguity not confirmed: {} for {:?}",
                    u.derivation1.flat(&g), spec
                );
            }
            if let Some(n) = &r.nonunifying {
                prop_assert!(validate::nonunifying_consistent(&g, n));
            }
        }
    }

    /// GLR and Earley agree on membership of random short strings.
    #[test]
    fn engines_agree_on_membership(spec in arb_spec(), words in prop::collection::vec(0u8..4, 0..6)) {
        let g = build(&spec);
        let auto = Automaton::build(&g);
        let input: Vec<SymbolId> = words
            .iter()
            .filter_map(|&c| g.symbol_named(&sym_name(c)))
            .collect();
        let glr_accepts = !glr::parses(
            &g,
            &auto,
            &input,
            glr::Limits { max_parses: 1, max_steps: 100_000, max_depth: 256 },
        )
        .is_empty();
        let earley_accepts = chart::recognizes(&g, g.start(), &input);
        prop_assert_eq!(glr_accepts, earley_accepts,
            "membership disagreement on {:?} for {:?}", g.format_symbols(&input), spec);
    }

    /// Structural automaton invariants hold for every grammar.
    #[test]
    fn automaton_invariants(spec in arb_spec()) {
        let g = build(&spec);
        let auto = Automaton::build(&g);
        for id in auto.state_ids() {
            let st = auto.state(id);
            prop_assert!(st.kernel_len() >= 1 || id == lalrcex::lr::StateId::START);
            for &(sym, target) in st.transitions() {
                prop_assert_eq!(auto.state(target).accessing_symbol(), Some(sym));
            }
            // Every item's successor state contains the advanced item.
            for &it in st.items() {
                if let Some(next) = it.next_symbol(&g) {
                    let target = st.transition(next).expect("transition for item");
                    prop_assert!(auto.state(target).item_index(it.advance(&g)).is_some());
                }
            }
        }
    }

    /// The deterministic parser accepts exactly the GLR language when the
    /// grammar has no conflicts.
    #[test]
    fn lr_equals_glr_without_conflicts(spec in arb_spec(), words in prop::collection::vec(0u8..4, 0..6)) {
        let g = build(&spec);
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        prop_assume!(tables.conflicts().is_empty());
        let input: Vec<SymbolId> = words
            .iter()
            .filter_map(|&c| g.symbol_named(&sym_name(c)))
            .collect();
        let lr = lalrcex::lr::parser::parse(&g, &auto, &tables, &input).is_ok();
        let glr_accepts = !glr::parses(
            &g,
            &auto,
            &input,
            glr::Limits { max_parses: 1, max_steps: 100_000, max_depth: 256 },
        )
        .is_empty();
        prop_assert_eq!(lr, glr_accepts);
    }
}
