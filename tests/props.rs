//! Property-based tests over randomly generated grammars: the
//! counterexample engine must never claim an ambiguity the independent
//! Earley oracle cannot confirm, and the parsing engines must agree on
//! membership, whatever the grammar looks like.
//!
//! The random grammars come from a hand-rolled generator driven by the
//! in-repo deterministic [`XorShift`] PRNG (no external registry access),
//! so every failure is reproducible from the printed seed.

use std::time::Duration;

use lalrcex::core::{validate, Analyzer, CexConfig, SearchConfig};
use lalrcex::earley::{chart, forest};
use lalrcex::grammar::{Grammar, GrammarBuilder, SymbolId};
use lalrcex::lr::{glr, Automaton};
use lalrcex::prng::XorShift;

/// A compact description of a random grammar: for each nonterminal, a few
/// productions over a mixed alphabet.
#[derive(Clone, Debug)]
struct GrammarSpec {
    /// prods[i] = productions of nonterminal `ni`; each production is a
    /// sequence of symbol codes (0..3 = terminals t0..t3, 4..6 = n0..n2).
    prods: Vec<Vec<Vec<u8>>>,
}

const NT_COUNT: usize = 3;

fn nt_name(i: usize) -> String {
    format!("n{i}")
}

fn sym_name(code: u8) -> String {
    match code {
        0..=3 => format!("t{code}"),
        other => nt_name((other - 4) as usize % NT_COUNT),
    }
}

/// Hand-rolled replacement for the former proptest strategy: for each of
/// the three nonterminals, 1–3 productions of 0–3 symbols each, codes
/// uniform over 4 terminals + 3 nonterminals.
fn gen_spec(rng: &mut XorShift) -> GrammarSpec {
    let prods = (0..NT_COUNT)
        .map(|_| {
            let nprods = 1 + rng.gen_range(3);
            (0..nprods)
                .map(|_| {
                    let len = rng.gen_range(4);
                    (0..len).map(|_| rng.gen_range(7) as u8).collect()
                })
                .collect()
        })
        .collect();
    GrammarSpec { prods }
}

/// A random word over the terminal alphabet, length 0–5.
fn gen_word(rng: &mut XorShift, g: &Grammar) -> Vec<SymbolId> {
    let len = rng.gen_range(6);
    (0..len)
        .filter_map(|_| g.symbol_named(&sym_name(rng.gen_range(4) as u8)))
        .collect()
}

fn build(spec: &GrammarSpec) -> Grammar {
    let mut b = GrammarBuilder::new();
    b.start(&nt_name(0));
    for (i, prods) in spec.prods.iter().enumerate() {
        let lhs = nt_name(i);
        for p in prods {
            let names: Vec<String> = p.iter().map(|&c| sym_name(c)).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b.rule(&lhs, &refs);
        }
    }
    b.build().expect("random grammars are structurally valid")
}

fn quick_cfg() -> CexConfig {
    CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_millis(300),
            max_configs: 1 << 14,
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(5),
        ..CexConfig::default()
    }
}

const CASES: u64 = 48;

/// Soundness: every claimed unifying counterexample is a genuine
/// ambiguity (confirmed by the Earley forest oracle), and every
/// produced derivation applies real productions of the grammar.
#[test]
fn unifying_claims_are_sound() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0xA11CE + seed);
        let spec = gen_spec(&mut rng);
        let g = build(&spec);
        let mut analyzer = Analyzer::new(&g);
        let report = analyzer.analyze_all(&quick_cfg());
        for r in &report.reports {
            if let Some(u) = &r.unifying {
                assert!(
                    validate::unifying_consistent(&g, u),
                    "seed {seed}: {spec:?}"
                );
                assert!(
                    forest::is_ambiguous_form(&g, u.nonterminal, &u.sentential_form()),
                    "seed {seed}: claimed ambiguity not confirmed: {} for {:?}",
                    u.derivation1.flat(&g),
                    spec
                );
            }
            if let Some(n) = &r.nonunifying {
                assert!(
                    validate::nonunifying_consistent(&g, n),
                    "seed {seed}: {spec:?}"
                );
            }
        }
    }
}

/// GLR and Earley agree on membership of random short strings.
#[test]
fn engines_agree_on_membership() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0xB0B + seed);
        let spec = gen_spec(&mut rng);
        let g = build(&spec);
        let auto = Automaton::build(&g);
        for _ in 0..4 {
            let input = gen_word(&mut rng, &g);
            let glr_accepts = !glr::parses(
                &g,
                &auto,
                &input,
                glr::Limits {
                    max_parses: 1,
                    max_steps: 100_000,
                    max_depth: 256,
                },
            )
            .is_empty();
            let earley_accepts = chart::recognizes(&g, g.start(), &input);
            assert_eq!(
                glr_accepts,
                earley_accepts,
                "seed {seed}: membership disagreement on {:?} for {:?}",
                g.format_symbols(&input),
                spec
            );
        }
    }
}

/// Structural automaton invariants hold for every grammar.
#[test]
fn automaton_invariants() {
    for seed in 0..CASES {
        let mut rng = XorShift::new(0xCAFE + seed);
        let spec = gen_spec(&mut rng);
        let g = build(&spec);
        let auto = Automaton::build(&g);
        for id in auto.state_ids() {
            let st = auto.state(id);
            assert!(st.kernel_len() >= 1 || id == lalrcex::lr::StateId::START);
            for &(sym, target) in st.transitions() {
                assert_eq!(auto.state(target).accessing_symbol(), Some(sym));
            }
            // Every item's successor state contains the advanced item.
            for &it in st.items() {
                if let Some(next) = it.next_symbol(&g) {
                    let target = st.transition(next).expect("transition for item");
                    assert!(
                        auto.state(target).item_index(it.advance(&g)).is_some(),
                        "seed {seed}: {spec:?}"
                    );
                }
            }
        }
    }
}

/// The deterministic parser accepts exactly the GLR language when the
/// grammar has no conflicts.
#[test]
fn lr_equals_glr_without_conflicts() {
    for seed in 0..CASES * 2 {
        let mut rng = XorShift::new(0xD00D + seed);
        let spec = gen_spec(&mut rng);
        let g = build(&spec);
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        if !tables.conflicts().is_empty() {
            continue; // the property only applies to conflict-free tables
        }
        for _ in 0..4 {
            let input = gen_word(&mut rng, &g);
            let lr = lalrcex::lr::parser::parse(&g, &auto, &tables, &input).is_ok();
            let glr_accepts = !glr::parses(
                &g,
                &auto,
                &input,
                glr::Limits {
                    max_parses: 1,
                    max_steps: 100_000,
                    max_depth: 256,
                },
            )
            .is_empty();
            assert_eq!(lr, glr_accepts, "seed {seed}: {spec:?}");
        }
    }
}
