//! Determinism of the parallel conflict engine, and graceful degradation
//! of the grammar-wide cumulative budget.
//!
//! The engine's guarantee: for runs where no time limit fires (budgets far
//! larger than the work) or where the budget is already exhausted (zero),
//! `analyze_all` produces byte-identical formatted reports regardless of
//! the worker count. Wall-clock fields and the memo hit/miss split are
//! explicitly outside the guarantee and are not compared.

use std::time::Duration;

use lalrcex::core::{format_report, Analyzer, CexConfig, ExampleKind, GrammarReport, SearchConfig};
use lalrcex::grammar::Grammar;

fn load(name: &str) -> Grammar {
    lalrcex::corpus::by_name(name)
        .expect("corpus entry")
        .load()
        .expect("corpus grammar parses")
}

fn generous(workers: usize) -> CexConfig {
    CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_secs(30),
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(600),
        workers,
        ..CexConfig::default()
    }
}

fn run(g: &Grammar, cfg: &CexConfig) -> GrammarReport {
    Analyzer::new(g).analyze_all(cfg)
}

/// Asserts the determinism contract between two runs of the same grammar.
fn assert_identical(g: &Grammar, a: &GrammarReport, b: &GrammarReport) {
    assert_eq!(a.reports.len(), b.reports.len(), "same conflict count");
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x.conflict.state, y.conflict.state, "conflict order");
        assert_eq!(x.conflict.terminal, y.conflict.terminal, "conflict order");
        assert_eq!(x.outcome, y.outcome, "same outcome");
        assert_eq!(
            format_report(g, x),
            format_report(g, y),
            "byte-identical report"
        );
    }
    // Deterministic search counters (wall-clock and memo splits excluded).
    assert_eq!(a.stats.search.explored, b.stats.search.explored);
    assert_eq!(a.stats.search.enqueued, b.stats.search.enqueued);
    assert_eq!(a.stats.search.deduped, b.stats.search.deduped);
}

#[test]
fn figure1_parallel_matches_sequential() {
    let g = load("figure1");
    let seq = run(&g, &generous(1));
    let par = run(&g, &generous(4));
    assert_eq!(seq.reports.len(), 3, "figure1 has three conflicts");
    assert_identical(&g, &seq, &par);
}

#[test]
fn eqn_parallel_matches_sequential() {
    let g = load("eqn");
    let seq = run(&g, &generous(1));
    let par = run(&g, &generous(4));
    assert_identical(&g, &seq, &par);
}

#[test]
fn pascal_parallel_matches_sequential() {
    let g = load("Pascal.2");
    let seq = run(&g, &generous(1));
    let par = run(&g, &generous(4));
    assert!(!seq.reports.is_empty(), "Pascal.2 has conflicts");
    assert_identical(&g, &seq, &par);
}

/// §6 degradation: a spent cumulative budget must not cost the user the
/// cheap nonunifying counterexamples — every conflict still gets one, and
/// the skip decision is deterministic across worker counts.
#[test]
fn exhausted_budget_degrades_gracefully_on_c89() {
    let g = load("C.3");
    let tiny = |workers| CexConfig {
        cumulative_limit: Duration::ZERO,
        workers,
        ..CexConfig::default()
    };
    let seq = run(&g, &tiny(1));
    let par = run(&g, &tiny(2));
    assert!(!seq.reports.is_empty(), "C.3 has conflicts");
    for r in &seq.reports {
        assert_eq!(r.kind(), Some(ExampleKind::NonunifyingSkipped));
        assert!(
            r.nonunifying.is_some(),
            "nonunifying example survives budget exhaustion"
        );
        assert!(r.unifying.is_none());
        assert_eq!(r.stats.search.explored, 0, "search really skipped");
    }
    assert_identical(&g, &seq, &par);
    assert_eq!(seq.stats.search.explored, 0);
}

/// A mid-run budget (big enough for some conflicts, too small for all) may
/// split kinds differently run to run, but must never lose the nonunifying
/// fallback and must keep conflict order.
#[test]
fn partial_budget_never_loses_nonunifying() {
    let g = load("C.3");
    let cfg = CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_millis(50),
            ..Default::default()
        },
        cumulative_limit: Duration::from_millis(100),
        workers: 2,
        ..CexConfig::default()
    };
    let report = run(&g, &cfg);
    // Report order must match the conflict table even when workers race.
    let analyzer = Analyzer::new(&g);
    let table: Vec<_> = analyzer.tables().conflicts().to_vec();
    assert_eq!(report.reports.len(), table.len());
    for (r, c) in report.reports.iter().zip(&table) {
        assert_eq!(r.conflict.state, c.state);
        assert_eq!(r.conflict.terminal, c.terminal);
    }
    for r in &report.reports {
        assert!(
            r.nonunifying.is_some(),
            "every conflict keeps a nonunifying example under a tiny budget"
        );
    }
}

/// Intra-conflict frontier sharding (the data-oriented core splitting one
/// heavy conflict's cost bucket across the worker pool) must not leak into
/// results: stackovf08's deep conflicts blow a bounded configuration
/// budget, and the resulting `TimedOut` partial stats — explored, enqueued,
/// deduped, arena cells — must be byte-identical at workers 1, 2, and 4.
#[test]
fn stackovf08_intra_conflict_stealing_is_deterministic() {
    let g = load("stackovf08");
    let bounded = |workers| CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_secs(3600),
            max_configs: 20_000,
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(3600),
        workers,
        ..CexConfig::default()
    };
    let one = run(&g, &bounded(1));
    let two = run(&g, &bounded(2));
    let four = run(&g, &bounded(4));
    assert!(
        one.reports
            .iter()
            .any(|r| r.kind() == Some(ExampleKind::NonunifyingTimeout)),
        "the configuration budget must actually bite so partial stats are exercised"
    );
    for other in [&two, &four] {
        assert_identical(&g, &one, other);
        for (x, y) in one.reports.iter().zip(&other.reports) {
            assert_eq!(x.stats.search.explored, y.stats.search.explored);
            assert_eq!(x.stats.search.enqueued, y.stats.search.enqueued);
            assert_eq!(x.stats.search.deduped, y.stats.search.deduped);
            assert_eq!(x.stats.search.frontier_peak, y.stats.search.frontier_peak);
            assert_eq!(x.stats.search.arena_cells, y.stats.search.arena_cells);
        }
    }
}

/// Equal-cost pop ordering: this grammar's first unifying example is
/// reachable through two equal-cost frontiers (associativity of `+` and
/// the `+`/`-` interleaving), so whichever surfaces is decided purely by
/// the queue's FIFO-within-bucket order. Pin the reported derivations cold
/// vs warm (spine memo) and at workers 1 vs 4 — a LIFO regression or a
/// merge-order change flips them.
#[test]
fn equal_cost_frontiers_pin_the_reported_example() {
    let g = Grammar::parse("%%\ne : e '+' e | e '-' e | N ;").expect("inline grammar");
    let mut analyzer = Analyzer::new(&g);
    let cold = analyzer.analyze_all(&generous(1));
    let warm = analyzer.analyze_all(&generous(1));
    let wide = run(&g, &generous(4));
    assert!(!cold.reports.is_empty(), "ambiguous grammar has conflicts");
    for r in &cold.reports {
        assert_eq!(r.kind(), Some(ExampleKind::Unifying), "ambiguity proven");
    }
    assert_identical(&g, &cold, &warm);
    assert_identical(&g, &cold, &wide);
    // Pin the actual winner of the first conflict's equal-cost race, not
    // just run-to-run agreement: both derivations flatten to the same
    // three-terminal sentence, deriving it two ways.
    let ex = cold.reports[0].unifying.as_ref().expect("unifying example");
    assert_ne!(
        ex.derivation1.pretty(&g),
        ex.derivation2.pretty(&g),
        "two distinct derivations of one sentence"
    );
    assert_eq!(
        ex.derivation1.flat(&g),
        ex.derivation2.flat(&g),
        "derivations unify on the same sentential form"
    );
}

/// `cancel_stride` sets how often the hot loop polls the cancel token,
/// deadline, and governor — cadence only. Any stride must produce
/// byte-identical reports, and a pre-cancelled token must stop every
/// search before it explores a single configuration.
#[test]
fn cancel_stride_is_cadence_not_semantics() {
    let g = load("figure1");
    let strided = |stride| CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_secs(30),
            cancel_stride: stride,
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(600),
        workers: 2,
        ..CexConfig::default()
    };
    let tight = run(&g, &strided(1));
    let default = run(&g, &strided(256));
    let loose = run(&g, &strided(4096));
    assert_identical(&g, &tight, &default);
    assert_identical(&g, &tight, &loose);

    // A token cancelled before the run starts is seen no later than the
    // first stride poll: nothing is explored, every slot degrades.
    let cancel = lalrcex::core::CancelToken::new();
    cancel.cancel(lalrcex::core::CancelReason::Signal);
    let report = Analyzer::new(&g).analyze_all_cancellable(&strided(1), &cancel);
    assert_eq!(report.stats.search.explored, 0, "no work after cancel");
    for r in &report.reports {
        assert_ne!(r.kind(), Some(ExampleKind::Unifying));
    }
}

/// The explain surface inherits the engine's determinism end to end: the
/// rendered text and the schema-v1 JSON document are byte-identical at
/// workers 1 vs 4, and a warm-cache run (second explain of the same
/// grammar text through the same `Session`) matches the cold run exactly.
#[test]
fn explain_is_deterministic_across_workers_and_cache_state() {
    use lalrcex::{AnalysisRequest, Session};

    let entry = lalrcex::corpus::by_name("figure1").expect("corpus entry");
    let text = entry.text();
    let req = |workers: usize| {
        AnalysisRequest::new(&text)
            .label("figure1.y")
            .time_limit(Duration::from_secs(30))
            .cumulative_limit(Duration::from_secs(600))
            .workers(workers)
    };

    let session = Session::new();
    let cold = session.explain(&req(1)).expect("cold explain");
    assert!(!cold.cache_hit, "first explain misses the cache");
    let warm = session.explain(&req(1)).expect("warm explain");
    assert!(warm.cache_hit, "second explain hits the cache");
    assert_eq!(
        cold.render_text(None),
        warm.render_text(None),
        "cold vs warm cache"
    );
    assert_eq!(
        cold.to_json().to_string(),
        warm.to_json().to_string(),
        "cold vs warm cache (json)"
    );

    // A fresh session at a different worker count: byte-identical still.
    let wide = Session::new().explain(&req(4)).expect("workers=4 explain");
    assert_eq!(
        cold.render_text(None),
        wide.render_text(None),
        "workers=1 vs workers=4"
    );
    assert_eq!(
        cold.to_json().to_string(),
        wide.to_json().to_string(),
        "workers=1 vs workers=4 (json)"
    );

    // Single-conflict rendering is a strict filter of the full rendering.
    let one = cold.render_text(Some(0));
    assert!(cold.render_text(None).contains("== conflict #0 =="));
    assert!(one.contains("== conflict #0 ==") && !one.contains("== conflict #1 =="));
}
