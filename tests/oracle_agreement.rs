//! Cross-validation of the three independent parsing engines: the
//! deterministic LR parser, the nondeterministic GLR runtime, and the
//! Earley-based derivation forest. They share no code beyond the grammar
//! representation, so agreement is strong evidence of correctness.

use lalrcex::earley::{chart, forest};
use lalrcex::grammar::{Grammar, SymbolId};
use lalrcex::lr::{glr, parser, Automaton};

fn syms(g: &Grammar, names: &[&str]) -> Vec<SymbolId> {
    names.iter().map(|n| g.symbol_named(n).unwrap()).collect()
}

struct Fixture {
    g: Grammar,
    auto: Automaton,
}

impl Fixture {
    fn new(src: &str) -> Fixture {
        let g = Grammar::parse(src).unwrap();
        let auto = Automaton::build(&g);
        Fixture { g, auto }
    }

    /// Checks all three engines on one input.
    fn check(&self, input: &[SymbolId]) {
        let glr_parses = glr::parses(&self.g, &self.auto, input, glr::Limits::default());
        let earley_recognizes = chart::recognizes(&self.g, self.g.start(), input);
        let earley_count = forest::count_parses(&self.g, self.g.start(), input, 8);
        assert_eq!(
            !glr_parses.is_empty(),
            earley_recognizes,
            "GLR and Earley disagree on membership of {:?}",
            self.g.format_symbols(input)
        );
        assert_eq!(
            glr_parses.len().min(8),
            earley_count,
            "GLR and Earley disagree on parse count of {:?}",
            self.g.format_symbols(input)
        );
        // The deterministic parser (with default conflict resolution) must
        // accept everything unambiguous that GLR accepts, and its tree
        // must be among the GLR trees.
        let tables = self.auto.tables(&self.g);
        if glr_parses.len() == 1 {
            let tree = parser::parse(&self.g, &self.auto, &tables, input)
                .unwrap_or_else(|e| panic!("LR rejects unambiguous input: {e}"));
            assert_eq!(tree, glr_parses[0], "LR tree differs from the GLR tree");
        }
    }
}

#[test]
fn agreement_on_unambiguous_grammar() {
    let f = Fixture::new("%% l : l 'a' | 'a' ;");
    for n in 1..8 {
        let input = vec![f.g.symbol_named("a").unwrap(); n];
        f.check(&input);
    }
    f.check(&[]);
}

#[test]
fn agreement_on_ambiguous_expressions() {
    let f = Fixture::new("%% e : e '+' e | N ;");
    for words in [
        vec!["N"],
        vec!["N", "+", "N"],
        vec!["N", "+", "N", "+", "N"],
        vec!["N", "+", "N", "+", "N", "+", "N"],
        vec!["N", "+"],
        vec!["+", "N"],
    ] {
        f.check(&syms(&f.g, &words));
    }
}

#[test]
fn agreement_on_dangling_else() {
    let f = Fixture::new("%% s : 'i' c 't' s 'e' s | 'i' c 't' s | 'x' ; c : 'k' ;");
    for words in [
        vec!["x"],
        vec!["i", "k", "t", "x"],
        vec!["i", "k", "t", "x", "e", "x"],
        vec!["i", "k", "t", "i", "k", "t", "x", "e", "x"],
        vec!["i", "k", "t", "i", "k", "t", "x", "e", "x", "e", "x"],
        vec!["i", "k", "t"],
    ] {
        f.check(&syms(&f.g, &words));
    }
}

#[test]
fn agreement_on_nullable_heavy_grammar() {
    let f = Fixture::new("%% s : a b 'x' ; a : | 'p' a ; b : | b 'q' ;");
    for words in [
        vec!["x"],
        vec!["p", "x"],
        vec!["q", "x"],
        vec!["p", "p", "q", "q", "x"],
        vec!["q", "p", "x"],
        vec![],
    ] {
        f.check(&syms(&f.g, &words));
    }
}

#[test]
fn agreement_on_palindromes() {
    // Non-LALR but unambiguous: the deterministic parser will fail on
    // some members (its default resolution is wrong for this language),
    // but GLR and Earley must still agree with each other.
    let f = Fixture::new("%% e : 'a' e 'a' | 'b' ;");
    let tables = f.auto.tables(&f.g);
    for words in [
        vec!["b"],
        vec!["a", "b", "a"],
        vec!["a", "a", "b", "a", "a"],
        vec!["a", "b"],
    ] {
        let input = syms(&f.g, &words);
        let glr_parses = glr::parses(&f.g, &f.auto, &input, glr::Limits::default());
        assert_eq!(
            !glr_parses.is_empty(),
            chart::recognizes(&f.g, f.g.start(), &input)
        );
        let _ = &tables;
    }
}

#[test]
fn sentential_forms_agree() {
    let f = Fixture::new("%% s : 'i' c 't' s 'e' s | 'i' c 't' s | 'x' ; c : 'k' ;");
    let s = f.g.start();
    let c = f.g.symbol_named("c").unwrap();
    let i = f.g.symbol_named("i").unwrap();
    let t = f.g.symbol_named("t").unwrap();
    // `i c t s` with nonterminal leaves.
    let form = vec![i, c, t, s];
    assert!(chart::recognizes(&f.g, s, &form));
    assert_eq!(forest::count_parses(&f.g, s, &form, 8), 1);
    assert_eq!(
        glr::parses(&f.g, &f.auto, &form, glr::Limits::default()).len(),
        1
    );
}
