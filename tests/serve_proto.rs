//! Integration tests for the JSON-Lines analysis service (protocol v1).
//!
//! The harness wires `lalrcex::service::serve` to an in-memory channel
//! reader and a shared output buffer, so tests can pace requests — send
//! one, wait for its response, send the next — and exercise genuinely
//! in-flight behavior (cancellation, duplicate ids) that a pre-canned
//! input script cannot reach.

use std::io::{BufRead, Read, Write};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lalrcex::api::json::{self, Json};
use lalrcex::service::{serve, ServeOptions, ServeSummary};

/// A `BufRead` fed by an mpsc channel: `fill_buf` blocks until the test
/// sends another chunk, and reports EOF when the sender is dropped.
struct ChannelReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let chunk = self.fill_buf()?;
        let n = chunk.len().min(out.len());
        out[..n].copy_from_slice(&chunk[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ChannelReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => {
                    self.buf.clear();
                    self.pos = 0;
                }
            }
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
    }
}

#[derive(Clone)]
struct SharedWriter(Arc<Mutex<Vec<u8>>>);

impl Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A serve loop running on its own thread, driven by the test.
struct Harness {
    tx: Option<Sender<Vec<u8>>>,
    out: Arc<Mutex<Vec<u8>>>,
    join: std::thread::JoinHandle<ServeSummary>,
}

impl Harness {
    fn start(opts: ServeOptions) -> Harness {
        let (tx, rx) = std::sync::mpsc::channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        let writer = SharedWriter(Arc::clone(&out));
        let join = std::thread::spawn(move || {
            let reader = ChannelReader {
                rx,
                buf: Vec::new(),
                pos: 0,
            };
            serve(reader, writer, &opts)
        });
        Harness {
            tx: Some(tx),
            out,
            join,
        }
    }

    fn send(&self, line: &str) {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.tx.as_ref().unwrap().send(bytes).unwrap();
    }

    /// The complete response lines written so far, parsed.
    fn responses(&self) -> Vec<Json> {
        let out = self.out.lock().unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        text.lines()
            .map(|l| json::parse(l).expect("every response line is valid JSON"))
            .collect()
    }

    /// Blocks until `n` response lines have been written.
    fn wait_responses(&self, n: usize) -> Vec<Json> {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let rs = self.responses();
            if rs.len() >= n {
                return rs;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {n} responses; have {}",
                rs.len()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Drops the sender (EOF) and joins the serve loop.
    fn finish(mut self) -> (Vec<Json>, ServeSummary) {
        drop(self.tx.take());
        let summary = self.join.join().expect("serve loop must not panic");
        let out = self.out.lock().unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        let responses = text
            .lines()
            .map(|l| json::parse(l).expect("every response line is valid JSON"))
            .collect();
        (responses, summary)
    }
}

fn corpus_text(name: &str) -> String {
    lalrcex::corpus::by_name(name)
        .expect("corpus entry")
        .text()
        .to_owned()
}

fn analyze_line(id: &str, grammar: &str, extra: &str) -> String {
    let g = Json::str(grammar).to_string();
    format!(r#"{{"op":"analyze","id":"{id}","grammar":{g},"file":"g.y"{extra}}}"#)
}

fn by_id<'a>(responses: &'a [Json], id: &str) -> &'a Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id}"))
}

/// A ~400-production chain grammar (conflict-free, so analysis is pure
/// engine construction) with a salt in its terminal names, for filling the
/// engine cache with distinct multi-hundred-KB entries.
fn big_grammar(salt: u32) -> String {
    let n = 400;
    let mut s = String::from("%%\ns : p0 ;\n");
    for i in 0..n {
        let tail = if i + 1 < n {
            format!("'a' p{}", i + 1)
        } else {
            "'z'".to_owned()
        };
        s.push_str(&format!("p{i} : 's{salt}t{i}' | {tail} ;\n"));
    }
    s
}

#[test]
fn malformed_and_oversized_lines_answer_structurally() {
    let h = Harness::start(ServeOptions {
        max_line_bytes: 128,
        ..ServeOptions::default()
    });
    h.send("this is not json");
    h.send(&format!(
        r#"{{"op":"stats","id":"pad","x":"{}"}}"#,
        "y".repeat(200)
    ));
    h.send(r#"{"op":"frobnicate","id":"u"}"#);
    h.send(r#"{"op":"analyze","id":"nog"}"#);
    h.send(r#"{"op":"stats","id":"s"}"#);
    let rs = h.wait_responses(5);
    let (_, summary) = {
        h.send(r#"{"op":"shutdown","id":"z"}"#);
        h.finish()
    };

    assert_eq!(rs[0].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        rs[0].get("id"),
        Some(&Json::Null),
        "unparsable line has no id"
    );
    let kind = |r: &Json| {
        r.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    assert_eq!(kind(&rs[0]).as_deref(), Some("protocol"));
    assert_eq!(kind(&rs[1]).as_deref(), Some("budget"), "oversized line");
    assert_eq!(rs[1].get("id"), Some(&Json::Null));
    assert_eq!(
        kind(by_id(&rs, "u")).as_deref(),
        Some("protocol"),
        "unknown op"
    );
    assert_eq!(
        kind(by_id(&rs, "nog")).as_deref(),
        Some("protocol"),
        "analyze without grammar"
    );
    assert_eq!(
        by_id(&rs, "s").get("ok").and_then(Json::as_bool),
        Some(true),
        "the loop keeps serving after every malformed line"
    );
    assert!(summary.shutdown);
    assert_eq!(summary.errors, 4);
}

/// Cold vs. warm cache, and workers=1 vs. workers=4: the embedded schema-v1
/// `report` document is byte-identical every time; only the envelope's
/// `cache` member distinguishes the runs.
#[test]
fn warm_cache_reports_are_byte_identical_across_worker_counts() {
    let text = corpus_text("figure1");
    let h = Harness::start(ServeOptions {
        workers: 4,
        ..ServeOptions::default()
    });
    h.send(&analyze_line("cold", &text, r#","workers":1"#));
    h.wait_responses(1);
    h.send(&analyze_line("warm", &text, r#","workers":4"#));
    h.wait_responses(2);
    h.send(r#"{"op":"stats","id":"s"}"#);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, _) = h.finish();

    let cold = by_id(&rs, "cold");
    let warm = by_id(&rs, "warm");
    assert_eq!(cold.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(
        warm.get("cache").and_then(Json::as_str),
        Some("hit"),
        "second analysis of identical text must reuse the cached engine"
    );
    let report = |r: &Json| r.get("report").unwrap().to_string();
    assert_eq!(
        report(cold),
        report(warm),
        "cold and warm reports must be byte-identical"
    );
    let cache = by_id(&rs, "s").get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
}

/// Under a deliberately small `--cache-mb`, filling the cache with
/// distinct large grammars evicts in LRU order, and the `stats` op
/// surfaces the eviction count.
#[test]
fn small_cache_budget_evicts_lru() {
    let h = Harness::start(ServeOptions {
        cache_mb: 1,
        ..ServeOptions::default()
    });
    // Each engine is a few hundred KB; three distinct ones overflow 1 MiB.
    for (i, salt) in [1u32, 2, 3].iter().enumerate() {
        h.send(&analyze_line(&format!("g{salt}"), &big_grammar(*salt), ""));
        h.wait_responses(i + 1);
    }
    h.send(r#"{"op":"stats","id":"s"}"#);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, _) = h.finish();

    let cache = by_id(&rs, "s").get("cache").unwrap();
    let evictions = cache.get("evictions").and_then(Json::as_u64).unwrap();
    let entries = cache.get("entries").and_then(Json::as_u64).unwrap();
    assert!(evictions >= 1, "three large engines must overflow 1 MiB");
    assert!(entries < 3, "evicted entries leave the cache");
    // The most recent grammar is never evicted: re-analyzing it hits.
    let h2 = Harness::start(ServeOptions {
        cache_mb: 1,
        ..ServeOptions::default()
    });
    h2.send(&analyze_line("a", &big_grammar(7), ""));
    h2.wait_responses(1);
    h2.send(&analyze_line("b", &big_grammar(7), ""));
    h2.wait_responses(2);
    let (rs2, _) = h2.finish();
    assert_eq!(
        by_id(&rs2, "b").get("cache").and_then(Json::as_str),
        Some("hit"),
        "a single over-budget entry still serves warm hits"
    );
}

/// `cancel` stops an in-flight analysis: the target's response arrives
/// with `cancelled:true` (and stub conflict entries), the cancel request
/// itself reports `found:true`, and the loop keeps serving.
#[test]
fn cancel_stops_in_flight_analysis() {
    let text = corpus_text("Java.2");
    let h = Harness::start(ServeOptions::default());
    // Extended search over Java.2 with an hour-scale budget: guaranteed to
    // still be in flight when the cancel lands.
    h.send(&analyze_line(
        "slow",
        &text,
        r#","extended":true,"time_limit_ms":3600000,"total_limit_ms":3600000"#,
    ));
    // A duplicate in-flight id is rejected without touching the original.
    h.send(&analyze_line("slow", "%% e : 'a' ;", ""));
    let rs = h.wait_responses(1);
    assert_eq!(
        rs[0].get("ok").and_then(Json::as_bool),
        Some(false),
        "duplicate id answers first, while the original is still in flight"
    );
    assert_eq!(rs[0].get("id").and_then(Json::as_str), Some("slow"));
    std::thread::sleep(Duration::from_millis(300));
    h.send(r#"{"op":"cancel","id":"c","target":"slow"}"#);
    let rs = h.wait_responses(3);
    let cancel = by_id(&rs, "c");
    assert_eq!(cancel.get("found").and_then(Json::as_bool), Some(true));
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, summary) = h.finish();
    let slow = rs
        .iter()
        .find(|r| {
            r.get("id").and_then(Json::as_str) == Some("slow")
                && r.get("op").and_then(Json::as_str) == Some("analyze")
        })
        .expect("the cancelled analysis still answers");
    assert_eq!(slow.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        slow.get("cancelled").and_then(Json::as_bool),
        Some(true),
        "hard cancel surfaces on the response envelope"
    );
    assert!(summary.shutdown);
}

/// EOF without `shutdown` drains in-flight work and returns cleanly.
#[test]
fn eof_drains_in_flight_requests() {
    let text = corpus_text("figure1");
    let h = Harness::start(ServeOptions::default());
    h.send(&analyze_line("a", &text, ""));
    let (rs, summary) = h.finish();
    assert!(!summary.shutdown, "EOF is not a shutdown");
    assert_eq!(summary.served, 1);
    assert_eq!(
        by_id(&rs, "a").get("ok").and_then(Json::as_bool),
        Some(true),
        "the in-flight analysis is drained, not dropped"
    );
}

/// The `explain` op classifies every conflict, its report carries the
/// schema-v1 `provenance` blocks, and a follow-up `stats` op surfaces the
/// per-entry provenance table bytes the computation added to the cached
/// engine's footprint.
#[test]
fn explain_op_classifies_and_stats_reports_provenance_bytes() {
    let text = corpus_text("figure1");
    let g = Json::str(&text).to_string();
    let h = Harness::start(ServeOptions::default());
    h.send(&format!(
        r#"{{"op":"explain","id":"e1","grammar":{g},"file":"figure1.y"}}"#
    ));
    h.wait_responses(1);
    h.send(r#"{"op":"stats","id":"s"}"#);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, summary) = h.finish();

    let e1 = by_id(&rs, "e1");
    assert_eq!(e1.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(e1.get("op").and_then(Json::as_str), Some("explain"));
    let class = e1.get("classification").expect("classification counts");
    let count = |k: &str| class.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(
        count("true_ambiguity_candidates") + count("merge_artifacts") + count("internal"),
        3,
        "every figure1 conflict is classified"
    );
    assert_eq!(count("internal"), 0);

    let report = e1.get("report").expect("report document");
    let conflicts = report
        .get("conflicts")
        .and_then(Json::as_arr)
        .expect("conflicts array");
    assert_eq!(conflicts.len(), 3);
    for c in conflicts {
        let p = c.get("provenance").expect("explain adds provenance");
        let label = p.get("classification").and_then(Json::as_str).unwrap();
        assert!(
            label == "true-ambiguity-candidate" || label == "merge-artifact",
            "unexpected classification {label}"
        );
        assert!(p.get("chain").and_then(Json::as_arr).is_some());
    }

    let stats = by_id(&rs, "s");
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("explain"))
            .and_then(Json::as_u64),
        Some(1)
    );
    let entries = stats
        .get("entries")
        .and_then(Json::as_arr)
        .expect("per-entry stats");
    assert_eq!(entries.len(), 1, "one cached engine");
    let prov_bytes = entries[0]
        .get("provenance_bytes")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        prov_bytes > 0,
        "explain populated the provenance tables, so the re-sampled \
         entry footprint must charge for them"
    );
    assert!(
        entries[0].get("bytes").and_then(Json::as_u64).unwrap() >= prov_bytes,
        "total entry bytes include the provenance share"
    );
    assert_eq!(summary.served, 3);
}

/// A `cancel` whose target already completed reports `found:false`, and
/// the completed id is free for reuse — only *in-flight* ids collide.
#[test]
fn cancel_after_completion_and_id_reuse() {
    let text = corpus_text("figure1");
    let h = Harness::start(ServeOptions::default());
    h.send(&analyze_line("r", &text, ""));
    h.wait_responses(1);
    h.send(r#"{"op":"cancel","id":"c","target":"r"}"#);
    let rs = h.wait_responses(2);
    let cancel = by_id(&rs, "c");
    assert_eq!(
        cancel.get("found").and_then(Json::as_bool),
        Some(false),
        "cancel after completion finds nothing in flight"
    );
    // Reusing the id of a completed request is not a duplicate.
    h.send(&analyze_line("r", &text, ""));
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, summary) = h.finish();
    let reuse = rs
        .iter()
        .filter(|r| r.get("id").and_then(Json::as_str) == Some("r"))
        .collect::<Vec<_>>();
    assert_eq!(reuse.len(), 2);
    assert!(reuse
        .iter()
        .all(|r| r.get("ok").and_then(Json::as_bool) == Some(true)));
    assert_eq!(
        reuse[1].get("cache").and_then(Json::as_str),
        Some("hit"),
        "the reused id re-analyzes the cached grammar"
    );
    assert!(summary.shutdown);
}

/// `shutdown` racing a just-admitted analysis: both are answered — the
/// admitted request is drained, never dropped.
#[test]
fn shutdown_races_just_admitted_request() {
    let text = corpus_text("figure1");
    let h = Harness::start(ServeOptions::default());
    h.send(&analyze_line("a", &text, ""));
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, summary) = h.finish();
    assert!(summary.shutdown);
    assert_eq!(summary.served, 2);
    assert_eq!(
        by_id(&rs, "a").get("ok").and_then(Json::as_bool),
        Some(true),
        "the admitted analysis completes through the drain"
    );
    assert_eq!(
        by_id(&rs, "z").get("ok").and_then(Json::as_bool),
        Some(true)
    );
}

/// An effectively already-expired deadline (1 ms on a heavy grammar)
/// degrades to a partial report — skipped unifying searches with their
/// nonunifying fallbacks constructed — and never a protocol error.
/// Verified cold (engine built after expiry) and warm (cache hit).
#[test]
fn expired_deadline_degrades_to_partial_report_cold_and_warm() {
    let text = corpus_text("Java.2");
    let h = Harness::start(ServeOptions::default());
    // Cold: building the Java.2 engine alone outlives the deadline, so
    // every slot sees a spent budget.
    h.send(&analyze_line(
        "cold",
        &text,
        r#","extended":true,"deadline_ms":1"#,
    ));
    h.wait_responses(1);
    h.send(&analyze_line(
        "warm",
        &text,
        r#","extended":true,"deadline_ms":1"#,
    ));
    h.wait_responses(2);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, _) = h.finish();

    for id in ["cold", "warm"] {
        let r = by_id(&rs, id);
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "{id}: deadline expiry is degradation, not an error"
        );
        assert_eq!(
            r.get("deadline_expired").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(r.get("cancelled").and_then(Json::as_bool), Some(false));
        assert_eq!(r.get("internal_count").and_then(Json::as_u64), Some(0));
        let conflicts = r
            .get("report")
            .and_then(|d| d.get("conflicts"))
            .and_then(Json::as_arr)
            .expect("partial report still carries every conflict");
        assert!(!conflicts.is_empty());
        let mut skipped = 0;
        for c in conflicts {
            let outcome = c.get("outcome").and_then(Json::as_str).unwrap();
            assert!(
                outcome.starts_with("nonunifying") || outcome == "unifying",
                "{id}: expiry lands on the degradation ladder, got {outcome}"
            );
            if outcome == "nonunifying-skipped" {
                skipped += 1;
                assert!(
                    !matches!(c.get("nonunifying"), None | Some(&Json::Null)),
                    "{id}: skipped slots still carry their nonunifying fallback"
                );
            }
        }
        assert!(
            skipped > 0,
            "{id}: a 1 ms deadline cannot run every Java.2 unifying search"
        );
    }
    assert_eq!(
        by_id(&rs, "cold").get("cache").and_then(Json::as_str),
        Some("miss")
    );
    assert_eq!(
        by_id(&rs, "warm").get("cache").and_then(Json::as_str),
        Some("hit")
    );
}

/// Admission control at `max_inflight:1`: with one slow analysis running,
/// `health` reports `shedding` and a second submission is shed with a
/// structured `overloaded` error carrying `retry_after_ms` — while the
/// admitted request keeps its budget and completes.
#[test]
fn overload_sheds_at_admission_with_retry_hint() {
    let text = corpus_text("Java.2");
    let h = Harness::start(ServeOptions {
        max_inflight: 1,
        ..ServeOptions::default()
    });
    // The reader admits (inserts) before reading the next line, so by the
    // time the requests below are parsed the slot is deterministically
    // taken.
    h.send(&analyze_line(
        "slow",
        &text,
        r#","extended":true,"time_limit_ms":3600000,"total_limit_ms":3600000"#,
    ));
    h.send(r#"{"op":"health","id":"h1"}"#);
    h.send(&analyze_line("shed", "%% e : 'a' ;", ""));
    h.send(r#"{"op":"health","id":"h2"}"#);
    let rs = h.wait_responses(3);

    let h1 = by_id(&rs, "h1");
    assert_eq!(h1.get("status").and_then(Json::as_str), Some("shedding"));
    assert_eq!(h1.get("inflight").and_then(Json::as_u64), Some(1));
    assert_eq!(h1.get("max_inflight").and_then(Json::as_u64), Some(1));

    let shed = by_id(&rs, "shed");
    assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
    let err = shed.get("error").expect("structured shed error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("overloaded"));
    assert_eq!(err.get("inflight").and_then(Json::as_u64), Some(1));
    assert_eq!(err.get("limit").and_then(Json::as_u64), Some(1));
    assert_eq!(
        err.get("retry_after_ms").and_then(Json::as_u64),
        Some(100),
        "deterministic backoff hint"
    );

    let h2 = by_id(&rs, "h2");
    assert_eq!(
        h2.get("counters")
            .and_then(|c| c.get("overloaded"))
            .and_then(Json::as_u64),
        Some(1)
    );

    h.send(r#"{"op":"cancel","id":"c","target":"slow"}"#);
    h.wait_responses(5);
    h.send(r#"{"op":"stats","id":"s"}"#);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, summary) = h.finish();
    let slow = rs
        .iter()
        .find(|r| {
            r.get("id").and_then(Json::as_str) == Some("slow")
                && r.get("op").and_then(Json::as_str) == Some("analyze")
        })
        .expect("the admitted request is answered, not shed");
    assert_eq!(slow.get("ok").and_then(Json::as_bool), Some(true));
    let stats = by_id(&rs, "s");
    let sup = stats.get("supervision").expect("stats supervision block");
    assert_eq!(sup.get("overloaded").and_then(Json::as_u64), Some(1));
    assert_eq!(
        stats.get("inflight").and_then(Json::as_u64),
        Some(0),
        "stats derives inflight from the live map"
    );
    assert!(summary.shutdown);
}

/// A writer that starts failing on demand — the in-process stand-in for a
/// peer that hung up (EPIPE on write).
#[derive(Clone)]
struct HangupWriter {
    out: Arc<Mutex<Vec<u8>>>,
    dead: Arc<std::sync::atomic::AtomicBool>,
}

impl Write for HangupWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead.load(std::sync::atomic::Ordering::SeqCst) {
            return Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
        }
        self.out.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// When the peer hangs up mid-analysis, the next failed response write
/// hard-cancels the in-flight work and the loop drains promptly instead
/// of burning an hour of search budget for a dead client.
#[test]
fn peer_hangup_cancels_in_flight_work_and_drains() {
    let text = corpus_text("Java.2");
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    let out = Arc::new(Mutex::new(Vec::new()));
    let dead = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = HangupWriter {
        out: Arc::clone(&out),
        dead: Arc::clone(&dead),
    };
    let join = std::thread::spawn(move || {
        let reader = ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        };
        serve(reader, writer, &ServeOptions::default())
    });
    let send = |line: &str| {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        tx.send(bytes).unwrap();
    };
    // An hour-budget extended search: without the hangup fix this test
    // would hang for the full budget at the drain.
    send(&analyze_line(
        "slow",
        &text,
        r#","extended":true,"time_limit_ms":3600000,"total_limit_ms":3600000"#,
    ));
    std::thread::sleep(Duration::from_millis(300));
    dead.store(true, std::sync::atomic::Ordering::SeqCst);
    // The peer is gone: this response write fails, which must cancel the
    // slow analysis and flag the loop to stop.
    send(r#"{"op":"stats","id":"s"}"#);
    drop(tx);
    let started = Instant::now();
    let summary = join.join().expect("serve loop must not panic");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "hangup must drain promptly, not run out the hour budget"
    );
    assert!(summary.hangup, "the summary reports the hangup");
    assert!(!summary.shutdown);
}

/// The additive `format` member: a `.y` grammar analyzed as
/// `"format":"yacc"` round-trips, a warm repeat under `"format":"auto"`
/// hits the same cache entry, and the embedded report is byte-identical
/// across cache temperature and format spelling.
#[test]
fn yacc_format_round_trips_with_warm_cache_byte_identity() {
    let twin = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/yacc_twins/figure1.y"
    ))
    .expect("committed yacc twin (cargo run --example make_yacc_twins)");
    let h = Harness::start(ServeOptions::default());
    h.send(&analyze_line("cold", &twin, r#","format":"yacc""#));
    h.wait_responses(1);
    // Auto must sniff the same frontend, land on the same cache entry.
    h.send(&analyze_line("warm", &twin, r#","format":"auto""#));
    h.wait_responses(2);
    // The DSL original renders the same conflicts but is a *different*
    // cache entry: same grammar, different frontend and text.
    h.send(&analyze_line("dsl", &corpus_text("figure1"), ""));
    h.send(r#"{"op":"stats","id":"s"}"#);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (rs, summary) = h.finish();

    let cold = by_id(&rs, "cold");
    let warm = by_id(&rs, "warm");
    assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(cold.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(
        warm.get("cache").and_then(Json::as_str),
        Some("hit"),
        "auto-sniffed repeat of the same yacc text must hit the cache"
    );
    let report = |r: &Json| r.get("report").unwrap().to_string();
    assert_eq!(
        report(cold),
        report(warm),
        "cold and warm yacc reports must be byte-identical"
    );
    let dsl = by_id(&rs, "dsl");
    assert_eq!(
        dsl.get("cache").and_then(Json::as_str),
        Some("miss"),
        "the DSL original is keyed separately from its yacc twin"
    );
    let conflicts = |r: &Json| {
        r.get("report")
            .and_then(|d| d.get("conflicts"))
            .and_then(Json::as_arr)
            .map(<[Json]>::len)
    };
    assert_eq!(
        conflicts(cold),
        conflicts(dsl),
        "both frontends agree on the conflict set"
    );
    assert!(summary.shutdown);
}

/// An unknown `format` value is a structured `unsupported_format` error
/// that echoes the offending value, and the loop keeps serving.
#[test]
fn unknown_format_is_a_structured_error() {
    let h = Harness::start(ServeOptions::default());
    h.send(&analyze_line("bad", "%% s : A ;", r#","format":"bison""#));
    h.send(&analyze_line("num", "%% s : A ;", r#","format":7"#));
    h.send(&analyze_line("ok", "%% s : A ;", r#","format":"dsl""#));
    let rs = h.wait_responses(3);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    let (_, summary) = h.finish();

    for (id, echoed) in [("bad", "bison"), ("num", "7")] {
        let r = by_id(&rs, id);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let err = r.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("unsupported_format")
        );
        assert_eq!(
            err.get("format").and_then(Json::as_str),
            Some(echoed),
            "{id}: the error echoes the offending format value"
        );
    }
    let ok = by_id(&rs, "ok");
    assert_eq!(
        ok.get("ok").and_then(Json::as_bool),
        Some(true),
        "the loop keeps serving after format rejections"
    );
    assert!(summary.shutdown);
}

/// A yacc-frontend parse failure surfaces as a `yacc_parse` error, not a
/// generic `grammar` one, so callers can tell which frontend rejected.
#[test]
fn yacc_parse_errors_carry_their_own_kind() {
    let h = Harness::start(ServeOptions::default());
    // The unquoted `%union` brace makes the sniffer pick yacc; the
    // mid-rule action is then a structured frontend rejection.
    h.send(&analyze_line(
        "mid",
        "%union { int n; }\n%%\ns : A { act(); } B ;\n",
        r#","format":"auto""#,
    ));
    let rs = h.wait_responses(1);
    h.send(r#"{"op":"shutdown","id":"z"}"#);
    h.finish();

    let r = by_id(&rs, "mid");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    let err = r.get("error").unwrap();
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("yacc_parse"));
    let msg = err.get("message").and_then(Json::as_str).unwrap();
    assert!(
        msg.contains("mid-rule action"),
        "message names the unsupported feature: {msg}"
    );
}
