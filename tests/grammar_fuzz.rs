//! Fuzzing `Grammar::parse` with the in-repo deterministic PRNG.
//!
//! The parser is the engine's outermost trust boundary: the CLI feeds it
//! arbitrary user files, so it must return `Ok` or a structured
//! [`GrammarError`] on *any* input — never panic, never hang, never blow
//! the structural caps that protect the automaton construction
//! (`MAX_PRODUCTIONS`, `MAX_RHS_SYMBOLS`).
//!
//! Three generators, coarse to fine:
//! 1. raw byte soup (exercises the lexer's edge cases),
//! 2. token soup assembled from the DSL's own vocabulary (gets past the
//!    lexer into the declaration/rule parser),
//! 3. mutations of a valid grammar (byte flips, truncations, splices —
//!    the classic "almost right" inputs).
//!
//! Everything is seeded, so a failure reproduces by seed.

use lalrcex::grammar::{Grammar, GrammarBuilder, GrammarError, MAX_PRODUCTIONS, MAX_RHS_SYMBOLS};
use lalrcex::prng::XorShift;

/// `Grammar::parse` must return, not unwind.
fn parse_must_not_panic(input: &str, what: &str) {
    let owned = input.to_owned();
    let result = std::panic::catch_unwind(move || {
        let _ = Grammar::parse(&owned);
    });
    assert!(
        result.is_ok(),
        "Grammar::parse panicked on {what}: {input:?}"
    );
}

#[test]
fn byte_soup_never_panics() {
    for seed in 0..64u64 {
        let mut rng = XorShift::new(seed);
        let len = rng.gen_range(256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
        // Both lossy-decoded arbitrary bytes and printable-ASCII-only soup.
        let lossy = String::from_utf8_lossy(&bytes).into_owned();
        parse_must_not_panic(&lossy, &format!("byte soup seed {seed}"));
        let ascii: String = bytes.iter().map(|&b| (32 + b % 95) as char).collect();
        parse_must_not_panic(&ascii, &format!("ascii soup seed {seed}"));
    }
}

#[test]
fn token_soup_never_panics() {
    const VOCAB: &[&str] = &[
        "%%",
        "%token",
        "%left",
        "%right",
        "%nonassoc",
        "%start",
        "%prec",
        "%empty",
        "%",
        ":",
        "|",
        ";",
        "'+'",
        "\"str\"",
        "'",
        "\"",
        "a",
        "B",
        "e1",
        "_x",
        "+",
        "<=",
        "(",
        ")",
        "//c\n",
        "/*",
        "*/",
        "#c\n",
        "\n",
        ":=",
        ".",
        "-",
    ];
    for seed in 0..128u64 {
        let mut rng = XorShift::new(seed ^ 0xDEAD_BEEF);
        let n = 1 + rng.gen_range(60);
        let mut s = String::new();
        for _ in 0..n {
            s.push_str(VOCAB[rng.gen_range(VOCAB.len())]);
            if rng.chance(3, 4) {
                s.push(' ');
            }
        }
        parse_must_not_panic(&s, &format!("token soup seed {seed}"));
    }
}

#[test]
fn mutated_valid_grammars_never_panic() {
    let base = "%token IF THEN ELSE\n\
                %left '+' '-'\n\
                %nonassoc UMINUS\n\
                %start stmt\n\
                %%\n\
                stmt : IF expr THEN stmt ELSE stmt | IF expr THEN stmt ;\n\
                expr : NUM | expr '+' expr | '-' expr %prec UMINUS | %empty ;\n";
    assert!(Grammar::parse(base).is_ok(), "the base grammar is valid");
    for seed in 0..128u64 {
        let mut rng = XorShift::new(seed.wrapping_mul(0x9E37_79B9));
        let mut bytes = base.as_bytes().to_vec();
        match rng.gen_range(3) {
            // Flip a handful of bytes to printable ASCII.
            0 => {
                for _ in 0..1 + rng.gen_range(8) {
                    let i = rng.gen_range(bytes.len());
                    bytes[i] = (32 + rng.gen_range(95)) as u8;
                }
            }
            // Truncate mid-token.
            1 => bytes.truncate(rng.gen_range(bytes.len())),
            // Splice a random slice over another position.
            _ => {
                let from = rng.gen_range(bytes.len());
                let len = rng.gen_range(bytes.len() - from);
                let to = rng.gen_range(bytes.len());
                let slice: Vec<u8> = bytes[from..from + len].to_vec();
                let end = (to + slice.len()).min(bytes.len());
                bytes[to..end].copy_from_slice(&slice[..end - to]);
            }
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        parse_must_not_panic(&mutated, &format!("mutation seed {seed}"));
    }
}

#[test]
fn production_count_cap_is_enforced() {
    // One rule over the cap, generated through the DSL: the parser itself
    // must surface the structured limit error.
    let mut src = String::from("%start n0\n%%\n");
    for i in 0..=MAX_PRODUCTIONS {
        src.push_str(&format!("n{i} : A ;\n"));
    }
    match Grammar::parse(&src) {
        Err(GrammarError::Limit { what, actual, .. }) => {
            assert_eq!(what, "production count");
            assert_eq!(actual, MAX_PRODUCTIONS + 1);
        }
        other => panic!("expected Limit error, got {other:?}"),
    }
    // Exactly at the cap is fine (builder API; DSL parsing of 65k rules
    // works too, it is just slower than this test needs to be).
    let mut b = GrammarBuilder::new();
    for _ in 0..MAX_PRODUCTIONS {
        b.rule("s", &["A"]);
    }
    assert!(b.build().is_ok());
}

#[test]
fn rhs_length_cap_is_enforced() {
    let long_rhs = "A ".repeat(MAX_RHS_SYMBOLS + 1);
    let src = format!("%% s : {long_rhs};");
    match Grammar::parse(&src) {
        Err(GrammarError::Limit { what, actual, .. }) => {
            assert_eq!(what, "right-hand-side length");
            assert_eq!(actual, MAX_RHS_SYMBOLS + 1);
        }
        other => panic!("expected Limit error, got {other:?}"),
    }
    let ok_rhs = "A ".repeat(MAX_RHS_SYMBOLS);
    assert!(Grammar::parse(&format!("%% s : {ok_rhs};")).is_ok());
    // The limit error renders a useful message.
    let e = GrammarError::Limit {
        what: "right-hand-side length",
        limit: MAX_RHS_SYMBOLS,
        actual: MAX_RHS_SYMBOLS + 1,
    };
    assert!(e.to_string().contains("right-hand-side length limit"));
}

// ---------------------------------------------------------------------------
// Yacc frontend fuzzing: same trust boundary, second parser. The `.y`
// intake reaches `lalrcex_yacc::parse` with arbitrary user files (and,
// via `format:"auto"`, with arbitrary *sniffed* files), so it carries the
// same contract as the DSL parser: `Ok` or a structured error, never a
// panic, never an unmetered blowup past the shared structural caps.

/// `lalrcex::yacc::parse` must return, not unwind. The sniffer runs on
/// the same input first — `Auto` intake sniffs before parsing, so both
/// must hold up together.
fn yacc_must_not_panic(input: &str, what: &str) {
    let owned = input.to_owned();
    let result = std::panic::catch_unwind(move || {
        let _ = lalrcex::yacc::looks_like_yacc(&owned);
        let _ = lalrcex::yacc::parse(&owned);
    });
    assert!(
        result.is_ok(),
        "yacc frontend panicked on {what}: {input:?}"
    );
}

#[test]
fn yacc_byte_soup_never_panics() {
    for seed in 0..64u64 {
        let mut rng = XorShift::new(seed ^ 0x5EED_CAFE);
        let len = rng.gen_range(256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
        let lossy = String::from_utf8_lossy(&bytes).into_owned();
        yacc_must_not_panic(&lossy, &format!("yacc byte soup seed {seed}"));
        let ascii: String = bytes.iter().map(|&b| (32 + b % 95) as char).collect();
        yacc_must_not_panic(&ascii, &format!("yacc ascii soup seed {seed}"));
    }
}

#[test]
fn yacc_token_soup_never_panics() {
    // The yacc surface on top of the DSL vocabulary: prologue fences,
    // actions, union blocks, type tags, token numbers, and the directives
    // the frontend swallows line-wise.
    const VOCAB: &[&str] = &[
        "%%",
        "%token",
        "%term",
        "%left",
        "%right",
        "%nonassoc",
        "%precedence",
        "%start",
        "%prec",
        "%empty",
        "%union",
        "%type",
        "%expect",
        "%expect-rr",
        "%code",
        "%define",
        "%name-prefix",
        "%pure-parser",
        "%locations",
        "%{",
        "%}",
        "{ $$ = $1; }",
        "{ if (a) { b(); } }",
        "{ \"s\" '}' /* } */ }",
        "{",
        "}",
        "<ty>",
        "<",
        ">",
        "42",
        "'+'",
        "'\\n'",
        "'",
        "\"str\"",
        ":",
        "|",
        ";",
        "a",
        "B",
        "e1",
        "yy.x",
        "a-b",
        "//c\n",
        "/*",
        "*/",
        "\n",
        "%",
    ];
    for seed in 0..128u64 {
        let mut rng = XorShift::new(seed ^ 0xFACE_FEED);
        let n = 1 + rng.gen_range(60);
        let mut s = String::new();
        for _ in 0..n {
            s.push_str(VOCAB[rng.gen_range(VOCAB.len())]);
            if rng.chance(3, 4) {
                s.push(' ');
            }
        }
        yacc_must_not_panic(&s, &format!("yacc token soup seed {seed}"));
    }
}

#[test]
fn mutated_valid_yacc_never_panics() {
    let base = "%{\n#include <x.h>\n%}\n\
                %union { int n; char *s; }\n\
                %token <n> NUM 257\n\
                %left '+' '-'\n\
                %nonassoc UMINUS\n\
                %start e\n\
                %%\n\
                e : NUM { $$ = $1; }\n\
                  | e '+' e { $$ = $1 + $3; }\n\
                  | '-' e %prec UMINUS { $$ = -$2; }\n\
                  | %empty\n\
                  ;\n\
                %%\n\
                int main(void) { return yyparse(); }\n";
    assert!(lalrcex::yacc::parse(base).is_ok(), "the base twin is valid");
    for seed in 0..128u64 {
        let mut rng = XorShift::new(seed.wrapping_mul(0xB529_7A4D));
        let mut bytes = base.as_bytes().to_vec();
        match rng.gen_range(3) {
            0 => {
                for _ in 0..1 + rng.gen_range(8) {
                    let i = rng.gen_range(bytes.len());
                    bytes[i] = (32 + rng.gen_range(95)) as u8;
                }
            }
            1 => bytes.truncate(rng.gen_range(bytes.len())),
            _ => {
                let from = rng.gen_range(bytes.len());
                let len = rng.gen_range(bytes.len() - from);
                let to = rng.gen_range(bytes.len());
                let slice: Vec<u8> = bytes[from..from + len].to_vec();
                let end = (to + slice.len()).min(bytes.len());
                bytes[to..end].copy_from_slice(&slice[..end - to]);
            }
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        yacc_must_not_panic(&mutated, &format!("yacc mutation seed {seed}"));
    }
}

/// The structural caps are shared with the DSL: a `.y` file cannot smuggle
/// an oversized grammar past `GrammarBuilder`'s limits, and the error is
/// the same structured `GrammarError::Limit`.
#[test]
fn yacc_shares_the_dsl_structural_caps() {
    let mut src = String::from("%start n0\n%%\n");
    for i in 0..=MAX_PRODUCTIONS {
        src.push_str(&format!("n{i} : A {{ act(); }} ;\n"));
    }
    match lalrcex::yacc::parse(&src) {
        Err(GrammarError::Limit { what, actual, .. }) => {
            assert_eq!(what, "production count");
            assert_eq!(actual, MAX_PRODUCTIONS + 1);
        }
        other => panic!("expected Limit error, got {other:?}"),
    }

    let long_rhs = "A ".repeat(MAX_RHS_SYMBOLS + 1);
    match lalrcex::yacc::parse(&format!("%% s : {long_rhs};")) {
        Err(GrammarError::Limit { what, actual, .. }) => {
            assert_eq!(what, "right-hand-side length");
            assert_eq!(actual, MAX_RHS_SYMBOLS + 1);
        }
        other => panic!("expected Limit error, got {other:?}"),
    }
    let ok_rhs = "A ".repeat(MAX_RHS_SYMBOLS);
    assert!(lalrcex::yacc::parse(&format!("%% s : {ok_rhs};")).is_ok());
}
