//! End-to-end tests: run the complete counterexample pipeline on the
//! reconstruction of the paper's evaluation corpus (the small and medium
//! rows — Table 1's big grammars run in the benchmark harness) and check
//! both the §7.2 effectiveness claims and the soundness of every produced
//! example against the independent Earley oracle.

use std::time::Duration;

use lalrcex::core::{validate, Analyzer, CexConfig, ExampleKind, SearchConfig};
use lalrcex::earley::forest;

fn cfg() -> CexConfig {
    CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_secs(5),
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(120),
        ..CexConfig::default()
    }
}

/// Analyze a corpus grammar and sanity-check every report.
fn run(name: &str) -> (lalrcex::grammar::Grammar, Vec<(ExampleKind, bool)>) {
    let entry = lalrcex::corpus::by_name(name).expect("corpus entry");
    let g = entry.load().expect("grammar loads");
    let mut analyzer = Analyzer::new(&g);
    let report = analyzer.analyze_all(&cfg());
    let mut out = Vec::new();
    for r in &report.reports {
        let mut oracle_ok = true;
        if let Some(u) = &r.unifying {
            assert!(
                validate::unifying_consistent(&g, u),
                "{name}: inconsistent unifying example {:?}",
                u.derivation1.flat(&g)
            );
            oracle_ok = forest::is_ambiguous_form(&g, u.nonterminal, &u.sentential_form());
        }
        if let Some(n) = &r.nonunifying {
            assert!(
                validate::nonunifying_consistent(&g, n),
                "{name}: inconsistent nonunifying example"
            );
        }
        out.push((r.kind().expect("no internal fault"), oracle_ok));
    }
    (g, out)
}

#[test]
fn figure1_all_unifying_and_confirmed() {
    let (_, rows) = run("figure1");
    assert_eq!(rows.len(), 3);
    for (kind, oracle) in rows {
        assert_eq!(kind, ExampleKind::Unifying);
        assert!(oracle, "Earley confirms the ambiguity");
    }
}

#[test]
fn figure3_unambiguous_grammar_exhausts() {
    let (_, rows) = run("figure3");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, ExampleKind::NonunifyingExhausted);
}

#[test]
fn figure7_both_conflicts_unifying() {
    let (_, rows) = run("figure7");
    assert_eq!(rows.len(), 2);
    for (kind, oracle) in rows {
        assert_eq!(kind, ExampleKind::Unifying);
        assert!(oracle);
    }
}

#[test]
fn ambfailed01_restricted_search_misses_extended_finds() {
    // The paper's §7.2: the shortest-path restriction makes the search
    // incomplete on this grammar; `-extendedsearch` recovers it.
    let entry = lalrcex::corpus::by_name("ambfailed01").unwrap();
    let g = entry.load().unwrap();

    let mut analyzer = Analyzer::new(&g);
    let restricted = analyzer.analyze_all(&cfg());
    assert_eq!(restricted.reports.len(), 1);
    assert_eq!(
        restricted.reports[0].kind(),
        Some(ExampleKind::NonunifyingExhausted),
        "restricted search must exhaust"
    );

    let mut extended_cfg = cfg();
    extended_cfg.search.extended = true;
    let mut analyzer2 = Analyzer::new(&g);
    let extended = analyzer2.analyze_all(&extended_cfg);
    assert_eq!(extended.reports[0].kind(), Some(ExampleKind::Unifying));
    let u = extended.reports[0].unifying.as_ref().unwrap();
    assert!(
        forest::is_ambiguous_form(&g, u.nonterminal, &u.sentential_form()),
        "extended search's example is a real ambiguity: {}",
        u.derivation1.flat(&g)
    );
}

#[test]
fn unambiguous_stack_overflow_grammars_get_nonunifying_examples() {
    for name in [
        "stackovf01",
        "stackovf04",
        "stackovf06",
        "stackovf08",
        "stackexc02",
    ] {
        let (_, rows) = run(name);
        assert!(!rows.is_empty(), "{name} has conflicts");
        for (kind, _) in rows {
            assert!(
                matches!(
                    kind,
                    ExampleKind::NonunifyingExhausted | ExampleKind::NonunifyingTimeout
                ),
                "{name}: unambiguous grammar must not get a unifying example, got {kind:?}"
            );
        }
    }
}

#[test]
fn ambiguous_stack_overflow_grammars_get_unifying_examples() {
    for name in [
        "stackovf02",
        "stackovf03",
        "stackovf05",
        "stackovf07",
        "stackovf10",
        "stackexc01",
    ] {
        let (_, rows) = run(name);
        assert!(!rows.is_empty(), "{name} has conflicts");
        let unifying = rows
            .iter()
            .filter(|(k, _)| *k == ExampleKind::Unifying)
            .count();
        assert!(
            unifying > 0,
            "{name}: expected at least one unifying example"
        );
        for (kind, oracle) in rows {
            if kind == ExampleKind::Unifying {
                assert!(oracle, "{name}: oracle must confirm");
            }
        }
    }
}

#[test]
fn medium_grammars_from_the_paper() {
    // simp2, xi, eqn: ambiguous, everything terminates quickly.
    for name in ["simp2", "xi", "eqn", "abcd"] {
        let (_, rows) = run(name);
        assert!(!rows.is_empty(), "{name} has conflicts");
        let unifying = rows
            .iter()
            .filter(|(k, _)| *k == ExampleKind::Unifying)
            .count();
        assert!(unifying >= 1, "{name}: at least one proven ambiguity");
    }
}

#[test]
fn sql_rows_match_paper_shape() {
    // All five SQL rows are ambiguous with quick unifying examples.
    for name in ["SQL.1", "SQL.2", "SQL.3", "SQL.4", "SQL.5"] {
        let (_, rows) = run(name);
        let unifying = rows
            .iter()
            .filter(|(k, _)| *k == ExampleKind::Unifying)
            .count();
        assert!(
            unifying >= 1,
            "{name}: expected a unifying counterexample, got {rows:?}"
        );
    }
}

#[test]
fn provenance_classifies_corpus_and_agrees_with_the_search() {
    // Small/medium rows (the big grammars run in the benchmark harness).
    // Two soundness obligations tie the static classification to the
    // dynamic search: every conflict gets a classification (no internal
    // faults on the corpus), and any conflict the §5 search *proved*
    // ambiguous with a unifying example must be a true-ambiguity
    // candidate — a merge artifact vanishes under canonical LR(1), so a
    // unifying proof would contradict the classification.
    use lalrcex::core::{Classification, ProvenanceOutcome};
    for name in ["figure1", "figure7", "simp2", "xi", "eqn", "abcd", "SQL.1"] {
        let entry = lalrcex::corpus::by_name(name).expect("corpus entry");
        let g = entry.load().expect("grammar loads");
        let mut analyzer = Analyzer::new(&g);
        let report = analyzer.analyze_all(&cfg());
        let p = analyzer.engine().provenance().expect("no faults");
        assert_eq!(
            p.conflicts.len(),
            report.reports.len(),
            "{name}: one provenance slot per conflict, table order"
        );
        assert_eq!(p.counts().internal, 0, "{name}: all conflicts classified");
        for (r, o) in report.reports.iter().zip(&p.conflicts) {
            let ProvenanceOutcome::Classified(cp) = o else {
                panic!("{name}: unclassified conflict");
            };
            assert_eq!(
                (cp.conflict.state, cp.conflict.terminal),
                (r.conflict.state, r.conflict.terminal),
                "{name}: provenance and report slots are index-aligned"
            );
            if r.unifying.is_some() {
                assert_eq!(
                    cp.classification,
                    Classification::TrueAmbiguityCandidate,
                    "{name}: a proven ambiguity cannot be a merge artifact"
                );
            }
        }
        for res in &p.resolutions {
            assert_eq!(res.classification, Classification::PrecedenceResolved);
        }
        if name == "eqn" {
            assert!(
                !p.resolutions.is_empty(),
                "eqn's precedence declarations silence conflicts"
            );
        }
    }
}
